package geom

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func chunkTestPoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64(i % 101), Y: float64(i % 37)}
	}
	return pts
}

// funcSeqOf adapts a slice to a FuncSeq, forcing the generic buffered
// chunk adapter (FuncSeq has no native ForEachChunk).
func funcSeqOf(pts []Point) FuncSeq {
	return func(fn func(Point)) error {
		for _, p := range pts {
			fn(p)
		}
		return nil
	}
}

// Chunk-boundary sizes: the empty stream, one point, and one point on
// either side of every chunk edge.
func chunkSizes() []int {
	return []int{0, 1, DefaultChunkSize - 1, DefaultChunkSize, DefaultChunkSize + 1, 3 * DefaultChunkSize}
}

func TestForEachChunkPartitionsStream(t *testing.T) {
	for _, n := range chunkSizes() {
		pts := chunkTestPoints(n)
		for name, seq := range map[string]PointSeq{"slice": SlicePoints(pts), "func": funcSeqOf(pts)} {
			var got []Point
			err := ForEachChunk(seq, func(chunk []Point) error {
				if len(chunk) == 0 {
					t.Fatalf("n=%d %s: empty chunk", n, name)
				}
				got = append(got, chunk...)
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, name, err)
			}
			if len(got) != n {
				t.Fatalf("n=%d %s: chunks hold %d points", n, name, len(got))
			}
			for i, p := range got {
				if p != pts[i] {
					t.Fatalf("n=%d %s: point %d = %v, want %v (order not preserved)", n, name, i, p, pts[i])
				}
			}
		}
	}
}

func TestForEachChunkErrorStopsIteration(t *testing.T) {
	pts := chunkTestPoints(3 * DefaultChunkSize)
	boom := errors.New("boom")
	for name, seq := range map[string]PointSeq{"slice": SlicePoints(pts), "func": funcSeqOf(pts)} {
		calls := 0
		err := ForEachChunk(seq, func(chunk []Point) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("%s: error = %v, want boom", name, err)
		}
		if calls != 2 {
			t.Errorf("%s: fn ran %d times after error, want 2", name, calls)
		}
	}
}

func TestForEachChunkParallelSeesEveryPointOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0, runtime.GOMAXPROCS(0)} {
		for _, n := range chunkSizes() {
			pts := chunkTestPoints(n)
			for name, seq := range map[string]PointSeq{"slice": SlicePoints(pts), "func": funcSeqOf(pts)} {
				var mu sync.Mutex
				seen := make(map[Point]int, n)
				total := 0
				err := ForEachChunkParallel(seq, workers, func(w int, chunk []Point) {
					mu.Lock()
					defer mu.Unlock()
					total += len(chunk)
					for _, p := range chunk {
						seen[p]++
					}
				})
				if err != nil {
					t.Fatalf("workers=%d n=%d %s: %v", workers, n, name, err)
				}
				if total != n {
					t.Fatalf("workers=%d n=%d %s: saw %d points", workers, n, name, total)
				}
				want := make(map[Point]int, n)
				for _, p := range pts {
					want[p]++
				}
				for p, c := range want {
					if seen[p] != c {
						t.Fatalf("workers=%d n=%d %s: point %v seen %d times, want %d", workers, n, name, p, seen[p], c)
					}
				}
			}
		}
	}
}

func TestForEachChunkParallelPropagatesSourceError(t *testing.T) {
	boom := errors.New("disk on fire")
	seq := FuncSeq(func(fn func(Point)) error {
		for i := 0; i < 2*DefaultChunkSize; i++ {
			fn(Point{X: float64(i)})
		}
		return boom
	})
	for _, workers := range []int{1, 4} {
		err := ForEachChunkParallel(seq, workers, func(int, []Point) {})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error = %v, want boom", workers, err)
		}
	}
}

func TestCountInDomain(t *testing.T) {
	dom := MustDomain(0, 0, 10, 10)
	pts := []Point{
		{X: 5, Y: 5},
		{X: 0, Y: 0},    // min corner: inside (boundary inclusive)
		{X: 10, Y: 10},  // max corner: inside
		{X: 10.1, Y: 5}, // outside
		{X: -1, Y: 5},   // outside
	}
	// Pad with in-domain points across a chunk boundary.
	for i := 0; i < DefaultChunkSize; i++ {
		pts = append(pts, Point{X: 1, Y: 1})
	}
	want := int64(3 + DefaultChunkSize)
	for _, workers := range []int{1, 2, 7, 0} {
		for name, seq := range map[string]PointSeq{"slice": SlicePoints(pts), "func": funcSeqOf(pts)} {
			got, err := CountInDomain(seq, dom, workers)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
			if got != want {
				t.Errorf("workers=%d %s: count = %d, want %d", workers, name, got, want)
			}
		}
	}
}

func TestSlicePointsChunksAreSubslices(t *testing.T) {
	pts := chunkTestPoints(DefaultChunkSize + 5)
	s := SlicePoints(pts)
	var chunks [][]Point
	if err := s.ForEachChunk(func(chunk []Point) error {
		chunks = append(chunks, chunk) // safe: slice chunks alias stable memory
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || len(chunks[0]) != DefaultChunkSize || len(chunks[1]) != 5 {
		t.Fatalf("chunk shapes: %d chunks", len(chunks))
	}
	if &chunks[0][0] != &pts[0] || &chunks[1][0] != &pts[DefaultChunkSize] {
		t.Error("slice chunks are copies, want zero-copy subslices")
	}
}

func ExampleForEachChunk() {
	pts := SlicePoints{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	total := 0
	_ = ForEachChunk(pts, func(chunk []Point) error {
		total += len(chunk)
		return nil
	})
	fmt.Println(total)
	// Output: 3
}
