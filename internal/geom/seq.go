package geom

// PointSeq is a re-iterable stream of points. It abstracts the data
// source so synopsis builders can scan datasets too large to hold in
// memory (the paper's section IV-C efficiency claim: UG needs one scan,
// AG at most two).
//
// ForEach must be callable multiple times, each call replaying the whole
// stream in the same order (the streaming AG build re-reads the data
// when its point index is disabled). Sources that can also replay in
// blocks should implement ChunkSeq; the ingestion engine consumes every
// source through its chunked view (see ForEachChunk).
type PointSeq interface {
	ForEach(fn func(Point)) error
}

// SlicePoints adapts an in-memory point slice to PointSeq.
type SlicePoints []Point

// ForEach implements PointSeq.
func (s SlicePoints) ForEach(fn func(Point)) error {
	for _, p := range s {
		fn(p)
	}
	return nil
}

// FuncSeq adapts a function to PointSeq; the function is invoked once per
// ForEach call and must replay the full stream each time.
type FuncSeq func(fn func(Point)) error

// ForEach implements PointSeq.
func (f FuncSeq) ForEach(fn func(Point)) error { return f(fn) }
