// Package geom provides the planar geometry substrate shared by every
// synopsis method in this repository: points, axis-aligned rectangles,
// and data domains with cell-coordinate conversions.
//
// All coordinates are float64 in arbitrary dataset units (the paper's
// datasets use degrees of longitude/latitude). Rectangles are half-open
// on neither side: a Rect covers [MinX, MaxX] x [MinY, MaxY]; grids
// resolve boundary ties by assigning a point on an interior cell edge to
// the higher-index cell, and clamping the final row/column so MaxX/MaxY
// stay inside the grid.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Point is a data tuple viewed as a point in the plane (section II-B of
// the paper: "we view each tuple as a point in two-dimensional space").
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
// The zero value is the degenerate rectangle at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given corners, normalizing the
// order so that Min <= Max on both axes.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have area 0.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// IsValid reports whether r has non-negative extent on both axes and all
// coordinates are finite.
func (r Rect) IsValid() bool {
	for _, v := range [...]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersect returns the intersection of r and s and whether it is
// non-degenerate (positive overlap on both axes is not required: touching
// rectangles intersect in a zero-area rectangle, and ok is still true as
// long as the intersection is non-empty).
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// OverlapFraction returns the fraction of r's area covered by s, in [0, 1].
// This is the uniformity estimate used when a query partially intersects a
// cell (section II-B). Degenerate r yields 0.
func (r Rect) OverlapFraction(s Rect) float64 {
	inter, ok := r.Intersect(s)
	if !ok {
		return 0
	}
	a := r.Area()
	if a <= 0 {
		return 0
	}
	f := inter.Area() / a
	if f > 1 {
		f = 1
	}
	return f
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Domain is the bounding rectangle of a dataset. The paper assumes the
// domain is public knowledge (its boundaries are part of the synopsis).
type Domain struct {
	Rect
}

// NewDomain returns a Domain for the given bounds.
func NewDomain(minX, minY, maxX, maxY float64) (Domain, error) {
	r := Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
	if !r.IsValid() || r.Width() <= 0 || r.Height() <= 0 {
		return Domain{}, fmt.Errorf("geom: invalid domain %v: need finite bounds with positive extent", r)
	}
	return Domain{Rect: r}, nil
}

// MustDomain is NewDomain but panics on error; for tests and constants.
func MustDomain(minX, minY, maxX, maxY float64) Domain {
	d, err := NewDomain(minX, minY, maxX, maxY)
	if err != nil {
		panic(err)
	}
	return d
}

// ErrOutOfDomain is returned when an operation receives a point or
// rectangle outside the domain it applies to.
var ErrOutOfDomain = errors.New("geom: outside domain")

// CellSize returns the width and height of one cell of an mx x my grid
// over d.
func (d Domain) CellSize(mx, my int) (w, h float64) {
	return d.Width() / float64(mx), d.Height() / float64(my)
}

// CellIndex maps p to the (ix, iy) cell of an mx x my equi-width grid over
// d. Points on interior edges go to the higher cell; MaxX/MaxY are clamped
// into the last row/column so every in-domain point has a cell.
func (d Domain) CellIndex(p Point, mx, my int) (ix, iy int) {
	w, h := d.CellSize(mx, my)
	return d.CellIndexAt(p, w, h, mx, my)
}

// CellIndexAt is CellIndex with the cell-size divisors precomputed by
// the caller — hot ingestion loops hoist CellSize out of their
// per-point loop (CellSize returns the identical w and h every call,
// so hoisting cannot change a point's binning). This function is the
// single source of truth for the binning arithmetic: every histogram
// kernel and point index must go through it so their cell assignments
// can never diverge.
func (d Domain) CellIndexAt(p Point, w, h float64, mx, my int) (ix, iy int) {
	ix = int((p.X - d.MinX) / w)
	iy = int((p.Y - d.MinY) / h)
	if ix >= mx {
		ix = mx - 1
	}
	if iy >= my {
		iy = my - 1
	}
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	return ix, iy
}

// CellRect returns the rectangle of cell (ix, iy) of an mx x my grid over d.
func (d Domain) CellRect(ix, iy, mx, my int) Rect {
	w, h := d.CellSize(mx, my)
	return Rect{
		MinX: d.MinX + float64(ix)*w,
		MinY: d.MinY + float64(iy)*h,
		MaxX: d.MinX + float64(ix+1)*w,
		MaxY: d.MinY + float64(iy+1)*h,
	}
}

// Clip returns r clipped to the domain and whether any part of r lies
// inside the domain.
func (d Domain) Clip(r Rect) (Rect, bool) {
	return d.Rect.Intersect(r)
}

// BoundingDomain returns the smallest valid domain covering all points,
// expanded by a tiny epsilon so that max-coordinate points are interior.
// It returns an error when points is empty or degenerate on an axis.
func BoundingDomain(points []Point) (Domain, error) {
	if len(points) == 0 {
		return Domain{}, errors.New("geom: cannot bound an empty point set")
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	// Expand degenerate axes so NewDomain accepts the result.
	const pad = 1e-9
	if maxX-minX <= 0 {
		minX -= pad
		maxX += pad
	}
	if maxY-minY <= 0 {
		minY -= pad
		maxY += pad
	}
	return NewDomain(minX, minY, maxX, maxY)
}
