package geom

import (
	"runtime"
	"sync"
)

// DefaultChunkSize is the number of points per block the chunked
// ingestion path hands to histogram workers: 8192 points = 128 KiB per
// chunk, small enough to stay cache-resident while amortizing the
// per-chunk handoff (channel send or callback) over thousands of
// points.
const DefaultChunkSize = 8192

// ChunkSeq is a PointSeq that can also replay the stream in blocks.
// Blocked iteration is the substrate of the parallel ingestion engine
// (grid.FromSeqParallel and the builders on top of it): workers consume
// whole chunks instead of taking a per-point callback, so the per-point
// cost is a slice iteration, not an indirect call.
//
// Contract: every chunk is non-empty, chunks partition the stream in
// order, and the chunk slice is only valid until fn returns (sources
// reuse the backing array between calls — callers that need to retain
// points must copy them). Like ForEach, ForEachChunk must be callable
// multiple times, each call replaying the whole stream.
type ChunkSeq interface {
	PointSeq
	// ForEachChunk streams the points in consecutive blocks. A non-nil
	// error from fn aborts the iteration and is returned unwrapped.
	ForEachChunk(fn func(chunk []Point) error) error
}

// chunkAbort carries fn's error out of a per-point ForEach that has no
// other way to stop early (see ForEachChunk's adapter path).
type chunkAbort struct{ err error }

// ForEachChunk streams seq in blocks: natively when seq implements
// ChunkSeq (slices yield zero-copy subslices, the block CSV reader
// yields its parse buffer), otherwise by packing the per-point ForEach
// stream into an internal buffer of DefaultChunkSize points. Every
// PointSeq therefore has a chunked view, which is what lets the
// parallel builders accept arbitrary sources.
//
// A non-nil error from fn stops the iteration immediately on both
// paths. The ForEach interface offers no abort channel, so the adapter
// unwinds with a sentinel panic; the source's own deferred cleanup
// (file closes etc.) runs normally.
func ForEachChunk(seq PointSeq, fn func(chunk []Point) error) (err error) {
	if cs, ok := seq.(ChunkSeq); ok {
		return cs.ForEachChunk(fn)
	}
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(chunkAbort)
			if !ok {
				panic(r)
			}
			err = a.err
		}
	}()
	buf := make([]Point, 0, DefaultChunkSize)
	err = seq.ForEach(func(p Point) {
		buf = append(buf, p)
		if len(buf) == cap(buf) {
			if fnErr := fn(buf); fnErr != nil {
				panic(chunkAbort{fnErr})
			}
			buf = buf[:0]
		}
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}

// ForEachChunk implements ChunkSeq: consecutive subslices of the
// underlying slice, no copying. The chunks alias the slice itself, so
// (unlike reused parse buffers) they happen to stay valid after fn
// returns; callers must not rely on that — it is not part of the
// ChunkSeq contract.
func (s SlicePoints) ForEachChunk(fn func(chunk []Point) error) error {
	for start := 0; start < len(s); start += DefaultChunkSize {
		end := start + DefaultChunkSize
		if end > len(s) {
			end = len(s)
		}
		if err := fn(s[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// ForEachChunkParallel streams seq once and fans its chunks out across
// workers goroutines: each chunk is handed to exactly one worker, and
// handle(w, chunk) runs concurrently for distinct workers w in
// [0, workers). The chunk is only valid during the call. workers < 1
// means one worker per CPU; with one worker the scan runs entirely on
// the calling goroutine, with no copies, channels, or goroutines.
//
// Which worker receives which chunk is scheduling-dependent, so handle
// must accumulate into per-worker state whose merged result is
// order-independent. Histogramming qualifies: cell counts are sums of
// exact small integers, so any partition of the stream merges to the
// bit-identical total — this is where the determinism of the parallel
// build paths comes from.
//
// Chunks from a source with reused parse buffers are copied into
// worker-owned buffers before crossing the goroutine boundary;
// SlicePoints chunks alias immutable caller memory and are sent
// directly.
func ForEachChunkParallel(seq PointSeq, workers int, handle func(worker int, chunk []Point)) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ForEachChunk(seq, func(chunk []Point) error {
			handle(0, chunk)
			return nil
		})
	}
	_, stable := seq.(SlicePoints)
	work := make(chan []Point, workers)
	var free chan []Point
	if !stable {
		free = make(chan []Point, 2*workers)
		for i := 0; i < 2*workers; i++ {
			free <- make([]Point, 0, DefaultChunkSize)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for chunk := range work {
				handle(w, chunk)
				if !stable {
					free <- chunk[:0]
				}
			}
		}(w)
	}
	err := ForEachChunk(seq, func(chunk []Point) error {
		if stable {
			work <- chunk
			return nil
		}
		buf := <-free
		work <- append(buf[:0], chunk...)
		return nil
	})
	close(work)
	wg.Wait()
	return err
}

// CountInDomain returns the number of points of seq inside dom,
// scanning the chunked view of the stream across workers goroutines
// (workers < 1 means one per CPU, 1 forces the sequential scan). It is
// the shared counting scan behind the data-dependent grid-size rules —
// Guideline 1 needs N before the histogram pass can size its grid —
// and its result is exact for every workers value.
func CountInDomain(seq PointSeq, dom Domain, workers int) (int64, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	counts := make([]int64, workers)
	err := ForEachChunkParallel(seq, workers, func(w int, chunk []Point) {
		n := counts[w]
		for _, p := range chunk {
			if dom.Contains(p) {
				n++
			}
		}
		counts[w] = n
	})
	if err != nil {
		return 0, err
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n, nil
}
