// Package obs provides the serving path's observability primitives:
// lock-free counters and histograms cheap enough to sit on the per-query
// hot path, collected in a Registry that renders the Prometheus text
// exposition format (the de-facto scrape format, version 0.0.4).
//
// The package is deliberately minimal — a fraction of a real Prometheus
// client: one optional label per metric family (InfoVec adds a second,
// descriptive label following the info pattern), no exemplars, no
// protobuf. That buys an implementation with zero dependencies whose
// record operations are a single atomic add (counters) or one atomic
// add plus a CAS loop (histogram sums), so instrumenting a query that
// itself costs microseconds does not distort what it measures.
//
// Concurrency: every record operation (Counter.Add, Histogram.Observe,
// vector lookups) is safe for concurrent use. Rendering takes only the
// vector read locks, so a scrape never blocks traffic; values read
// during a scrape are each individually atomic but the exposition as a
// whole is not a consistent snapshot, which is the standard Prometheus
// contract.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram records observations into fixed buckets plus a running sum
// and count — the Prometheus histogram model. Construct with
// newHistogram (via Registry); the zero value has no buckets.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind tags a family's TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric family: its metadata plus either a single
// unlabeled series or a label -> series map.
type family struct {
	name      string
	help      string
	kind      metricKind
	label     string // label name for vector families, "" for scalars
	infoLabel string // secondary label name for info families
	bounds    []float64

	mu         sync.RWMutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	infos      map[string]string // info families: label value -> info label value
	counter    *Counter          // unlabeled counter family
	histogram  *Histogram        // unlabeled histogram family
	gauge      func() float64    // unlabeled gauge family, sampled at render
}

// Registry collects metric families and renders them in registration
// order. Create with NewRegistry; methods on the zero value panic.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name: metric names
// are compile-time decisions, so a collision is a programming error the
// process should fail loudly on, not a runtime condition to handle.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.families = append(r.families, f)
	r.byName[f.name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return f.counter
}

// GaugeFunc registers a gauge whose value is sampled from fn at render
// time — the right shape for values that are already maintained
// elsewhere (a cache's current entry count, a pool's in-flight count).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, gauge: fn})
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, kind: kindCounter,
		label: label, counters: make(map[string]*Counter),
	})
	return &CounterVec{f: f}
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.RLock()
	c, ok := v.f.counters[value]
	v.f.mu.RUnlock()
	if ok {
		return c
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok = v.f.counters[value]; ok {
		return c
	}
	c = &Counter{}
	v.f.counters[value] = c
	return c
}

// Forget drops the series for the given label value, freeing its
// memory and removing it from future expositions. Call it when the
// labeled entity is retired (e.g. a synopsis is deleted) so label
// cardinality tracks the live set rather than everything ever seen. A
// caller still holding the dropped *Counter may keep adding to it;
// those adds are simply no longer rendered.
func (v *CounterVec) Forget(value string) {
	v.f.mu.Lock()
	delete(v.f.counters, value)
	v.f.mu.Unlock()
}

// InfoVec is a gauge family following the Prometheus "info" pattern:
// each series carries a constant value 1 and encodes a descriptive
// attribute in a secondary label, e.g.
//
//	dpserve_synopsis_kind{synopsis="roads",kind="adaptive-grid"} 1
//
// Joining on the primary label attaches the attribute to the numeric
// families without multiplying their cardinality.
type InfoVec struct{ f *family }

// InfoVec registers an info-pattern gauge family keyed by label whose
// descriptive attribute is exposed under infoLabel.
func (r *Registry) InfoVec(name, help, label, infoLabel string) *InfoVec {
	f := r.register(&family{
		name: name, help: help, kind: kindGauge,
		label: label, infoLabel: infoLabel, infos: make(map[string]string),
	})
	return &InfoVec{f: f}
}

// Set records the info value for the given label value, replacing any
// previous one (the old series disappears from the exposition — the
// info pattern exposes current state, not history).
func (v *InfoVec) Set(value, info string) {
	v.f.mu.Lock()
	v.f.infos[value] = info
	v.f.mu.Unlock()
}

// Forget drops the series for the given label value (see
// CounterVec.Forget).
func (v *InfoVec) Forget(value string) {
	v.f.mu.Lock()
	delete(v.f.infos, value)
	v.f.mu.Unlock()
}

// Histogram registers and returns an unlabeled histogram with the
// given strictly increasing upper bucket bounds (the +Inf bucket is
// implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	checkBounds(name, bounds)
	f := r.register(&family{
		name: name, help: help, kind: kindHistogram,
		bounds: bounds, histogram: newHistogram(bounds),
	})
	return f.histogram
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family with the given
// strictly increasing upper bucket bounds (the +Inf bucket is implicit).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	checkBounds(name, bounds)
	f := r.register(&family{
		name: name, help: help, kind: kindHistogram,
		label: label, bounds: bounds, histograms: make(map[string]*Histogram),
	})
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.RLock()
	h, ok := v.f.histograms[value]
	v.f.mu.RUnlock()
	if ok {
		return h
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok = v.f.histograms[value]; ok {
		return h
	}
	h = newHistogram(v.f.bounds)
	v.f.histograms[value] = h
	return h
}

// Forget drops the series for the given label value (see
// CounterVec.Forget).
func (v *HistogramVec) Forget(value string) {
	v.f.mu.Lock()
	delete(v.f.histograms, value)
	v.f.mu.Unlock()
}

// WritePrometheus renders every family in the Prometheus text
// exposition format, families in registration order and series within a
// family sorted by label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	switch {
	case f.gauge != nil:
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.gauge()))
	case f.counter != nil:
		fmt.Fprintf(b, "%s %d\n", f.name, f.counter.Value())
	case f.histogram != nil:
		h := f.histogram
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", f.name, formatValue(bound), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
		fmt.Fprintf(b, "%s_sum %s\n", f.name, formatValue(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", f.name, h.Count())
	case f.infos != nil:
		f.mu.RLock()
		for _, lv := range sortedKeys(f.infos) {
			fmt.Fprintf(b, "%s{%s=\"%s\",%s=\"%s\"} 1\n",
				f.name, f.label, escapeLabel(lv), f.infoLabel, escapeLabel(f.infos[lv]))
		}
		f.mu.RUnlock()
	case f.counters != nil:
		f.mu.RLock()
		values := sortedKeys(f.counters)
		for _, lv := range values {
			fmt.Fprintf(b, "%s{%s=\"%s\"} %d\n", f.name, f.label, escapeLabel(lv), f.counters[lv].Value())
		}
		f.mu.RUnlock()
	case f.histograms != nil:
		f.mu.RLock()
		values := sortedKeys(f.histograms)
		for _, lv := range values {
			h := f.histograms[lv]
			lab := escapeLabel(lv)
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(b, "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n",
					f.name, f.label, lab, formatValue(bound), cum)
			}
			cum += h.buckets[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", f.name, f.label, lab, cum)
			fmt.Fprintf(b, "%s_sum{%s=\"%s\"} %s\n", f.name, f.label, lab, formatValue(h.Sum()))
			fmt.Fprintf(b, "%s_count{%s=\"%s\"} %d\n", f.name, f.label, lab, h.Count())
		}
		f.mu.RUnlock()
	}
}

// checkBounds panics unless bounds are strictly increasing — a
// histogram's bucket layout is a compile-time decision.
func checkBounds(name string, bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format (%q above
// adds the surrounding quotes and escapes quotes and backslashes, but
// Go's %q also escapes non-ASCII; do it manually to match the format).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

// escapeHelp escapes a HELP string (backslash and newline only, per the
// format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
