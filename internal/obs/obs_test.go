package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("up_total", "Ups.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	v := r.CounterVec("queries_total", "Queries by synopsis.", "synopsis")
	v.With("a").Add(2)
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Fatalf("vec values = %d, %d", v.With("a").Value(), v.With("b").Value())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP up_total Ups.\n",
		"# TYPE up_total counter\n",
		"up_total 5\n",
		"# TYPE queries_total counter\n",
		`queries_total{synopsis="a"} 2` + "\n",
		`queries_total{synopsis="b"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Series sorted by label value.
	if strings.Index(out, `synopsis="a"`) > strings.Index(out, `synopsis="b"`) {
		t.Errorf("series not sorted by label value:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("latency_seconds", "Latency.", "synopsis", []float64{0.01, 0.1, 1})
	h := hv.With("s")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{synopsis="s",le="0.01"} 1` + "\n",
		`latency_seconds_bucket{synopsis="s",le="0.1"} 3` + "\n",
		`latency_seconds_bucket{synopsis="s",le="1"} 4` + "\n",
		`latency_seconds_bucket{synopsis="s",le="+Inf"} 5` + "\n",
		`latency_seconds_count{synopsis="s"} 5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestObserveOnBoundIsInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive per the Prometheus contract
	if got := h.buckets[0].Load(); got != 1 {
		t.Fatalf("bucket[0] = %d, want 1 (bounds are inclusive)", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 3.0
	r.GaugeFunc("cache_entries", "Entries.", func() float64 { return n })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cache_entries 3\n") {
		t.Errorf("gauge not rendered:\n%s", b.String())
	}
	n = 7
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cache_entries 7\n") {
		t.Errorf("gauge not resampled:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "C.", "name")
	v.With(`we"ird\name` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `c_total{name="we\"ird\\name\n"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing from:\n%s", want, b.String())
	}
}

func TestForgetDropsSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "C.", "name")
	hv := r.HistogramVec("h_seconds", "H.", "name", []float64{1})
	v.With("gone").Inc()
	v.With("kept").Inc()
	hv.With("gone").Observe(0.5)
	v.Forget("gone")
	hv.Forget("gone")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `name="gone"`) {
		t.Errorf("forgotten series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `c_total{name="kept"} 1`+"\n") {
		t.Errorf("unrelated series dropped:\n%s", out)
	}
	// Re-use after Forget starts a fresh series.
	v.With("gone").Inc()
	if got := v.With("gone").Value(); got != 1 {
		t.Errorf("re-created series = %d, want a fresh counter at 1", got)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r.Counter("x_total", "X again.")
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("adds_total", "Adds.")
	v := r.CounterVec("vec_total", "Vec.", "k")
	hv := r.HistogramVec("h_seconds", "H.", "k", []float64{0.5})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				v.With("a").Inc()
				hv.With("a").Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*per)
	}
	if v.With("a").Value() != goroutines*per {
		t.Errorf("vec = %d, want %d", v.With("a").Value(), goroutines*per)
	}
	h := hv.With("a")
	if h.Count() != goroutines*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*per)
	}
	if got, want := h.Sum(), 0.25*goroutines*per; got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}
