package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 100} {
		const n = 257
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	calls := 0
	For(0, 4, func(i int) { calls++ })
	For(-5, 4, func(i int) { calls++ })
	if calls != 0 {
		t.Fatalf("body ran %d times for non-positive n, want 0", calls)
	}
}

func TestForSingleWorkerRunsInOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("single-worker order = %v, want ascending", order)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestMapOrderAndCoverage(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{0, 1, 4} {
		got := Map(items, workers, func(v int) int { return v + 1 })
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*3+1 {
				t.Fatalf("workers=%d index %d: got %d", workers, i, v)
			}
		}
	}
	if got := Map(nil, 4, func(v int) int { return v }); len(got) != 0 {
		t.Fatalf("nil items gave %d results", len(got))
	}
}
