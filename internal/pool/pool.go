// Package pool provides the bounded worker pool used by the parallel
// synopsis-construction and batch-query paths. It is deliberately tiny:
// one primitive, For, that runs an indexed loop body across a fixed number
// of goroutines with dynamic work stealing via a shared atomic counter.
//
// Determinism is the caller's job: bodies must write only to their own
// index's slot (or otherwise partition state by index) so the result is
// independent of scheduling. The parallel grid builders pair For with
// noise.Forkable sub-streams keyed by index for exactly this reason.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values < 1 (including the zero
// value of an options struct) mean "one worker per available CPU".
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs f over every item, spread across at most workers goroutines
// (see For), and returns the results in input order. It is the single
// fan-out implementation behind every QueryBatch variant.
func Map[T, R any](items []T, workers int, f func(T) R) []R {
	out := make([]R, len(items))
	For(len(items), workers, func(i int) { out[i] = f(items[i]) })
	return out
}

// For runs body(i) for every i in [0, n), spread across at most workers
// goroutines, and returns when all calls have finished. workers values
// below 1 mean Workers(0), i.e. GOMAXPROCS. With one worker (or n <= 1)
// the loop runs entirely on the calling goroutine, making the sequential
// path allocation- and scheduling-free.
//
// Indices are handed out dynamically in contiguous chunks (an atomic
// counter advanced by chunk size), so uneven body costs balance across
// workers while cheap bodies — a batch query is a handful of prefix-table
// reads — amortize the contended atomic over many indices instead of
// paying it per call. body must be safe to call from multiple goroutines
// for distinct indices.
func For(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	// ~8 handouts per worker keeps stealing effective for skewed costs;
	// the cap bounds tail latency when n is huge.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	} else if chunk > 256 {
		chunk = 256
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}
