// Package query provides the evaluation substrate of section V-A: random
// rectangular query workloads in the paper's six size classes, the
// relative/absolute error metrics, and the five-number candlestick
// summaries used by the paper's figures (25th percentile, median, 75th,
// 95th, arithmetic mean).
package query

import (
	"fmt"
	"math"
	"sort"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// Workload is a set of queries of one size class.
type Workload struct {
	SizeClass int // 1..6 per Table II
	Queries   []geom.Rect
}

// Generate produces count random queries of extent w x h placed uniformly
// at random with the rectangle fully inside dom (the paper's workloads
// never overhang the domain). src supplies the placement randomness; a
// noise.NewSource(seed) draws the exact sequence the historical
// *rand.Rand-based signature produced for the same seed, so seeded
// workloads are stable across the migration.
func Generate(src noise.Source, dom geom.Domain, w, h float64, count int) ([]geom.Rect, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("query: extents must be positive, got %gx%g", w, h)
	}
	if w > dom.Width() || h > dom.Height() {
		return nil, fmt.Errorf("query: %gx%g query exceeds %gx%g domain", w, h, dom.Width(), dom.Height())
	}
	if count <= 0 {
		return nil, fmt.Errorf("query: count must be positive, got %d", count)
	}
	if src == nil {
		return nil, fmt.Errorf("query: nil source")
	}
	out := make([]geom.Rect, count)
	for i := range out {
		x0 := dom.MinX + src.Uniform()*(dom.Width()-w)
		y0 := dom.MinY + src.Uniform()*(dom.Height()-h)
		out[i] = geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + w, MaxY: y0 + h}
	}
	return out, nil
}

// RelativeError is the paper's metric: |estimate - truth| / max(truth, rho)
// with rho = 0.001 * N guarding against division by zero.
func RelativeError(estimate, truth, rho float64) float64 {
	denom := math.Max(truth, rho)
	if denom <= 0 {
		// Degenerate (empty dataset): fall back to absolute error so the
		// metric stays finite.
		return math.Abs(estimate - truth)
	}
	return math.Abs(estimate-truth) / denom
}

// AbsoluteError is |estimate - truth|.
func AbsoluteError(estimate, truth float64) float64 {
	return math.Abs(estimate - truth)
}

// Rho returns the paper's relative-error floor 0.001 * n.
func Rho(n int) float64 { return 0.001 * float64(n) }

// Candlestick is the five-value summary the paper's candlestick plots
// show: 25th percentile, median, 75th, 95th, and arithmetic mean.
type Candlestick struct {
	P25, Median, P75, P95, Mean float64
	N                           int
}

// Summarize computes the candlestick of a sample. It copies the input
// before sorting. Empty input yields a zero Candlestick.
func Summarize(sample []float64) Candlestick {
	n := len(sample)
	if n == 0 {
		return Candlestick{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Candlestick{
		P25:    quantile(s, 0.25),
		Median: quantile(s, 0.5),
		P75:    quantile(s, 0.75),
		P95:    quantile(s, 0.95),
		Mean:   sum / float64(n),
		N:      n,
	}
}

// quantile returns the q-quantile of sorted s by linear interpolation
// (type-7 / the R default).
func quantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// String renders the candlestick compactly for harness output.
func (c Candlestick) String() string {
	return fmt.Sprintf("p25=%.4g med=%.4g p75=%.4g p95=%.4g mean=%.4g (n=%d)",
		c.P25, c.Median, c.P75, c.P95, c.Mean, c.N)
}
