package query

import (
	"math"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

func TestGenerateValidation(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	rng := noise.NewSource(1)
	if _, err := Generate(rng, dom, 0, 1, 5); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Generate(rng, dom, 1, -1, 5); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := Generate(rng, dom, 20, 1, 5); err == nil {
		t.Error("oversized query accepted")
	}
	if _, err := Generate(rng, dom, 1, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
}

func TestGenerateInsideDomainWithExactSize(t *testing.T) {
	dom := geom.MustDomain(-5, 3, 15, 23)
	rng := noise.NewSource(2)
	qs, err := Generate(rng, dom, 4, 2.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 500 {
		t.Fatalf("count = %d, want 500", len(qs))
	}
	for i, q := range qs {
		if !dom.ContainsRect(q) {
			t.Fatalf("query %d (%v) overhangs domain", i, q)
		}
		if math.Abs(q.Width()-4) > 1e-9 || math.Abs(q.Height()-2.5) > 1e-9 {
			t.Fatalf("query %d size %gx%g, want 4x2.5", i, q.Width(), q.Height())
		}
	}
}

func TestGenerateFullDomainQuery(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	rng := noise.NewSource(3)
	qs, err := Generate(rng, dom, 10, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q != dom.Rect {
			t.Errorf("full-size query = %v, want whole domain", q)
		}
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		est, truth, rho, want float64
	}{
		{110, 100, 1, 0.1},
		{90, 100, 1, 0.1},
		{5, 0, 10, 0.5},   // rho floor engages when truth = 0
		{100, 100, 50, 0}, // exact
		{0, 2, 10, 0.2},   // truth below rho: divide by rho
	}
	for _, tc := range cases {
		if got := RelativeError(tc.est, tc.truth, tc.rho); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RelativeError(%g, %g, %g) = %g, want %g", tc.est, tc.truth, tc.rho, got, tc.want)
		}
	}
}

func TestRelativeErrorDegenerateRho(t *testing.T) {
	// Empty dataset: rho = 0 and truth = 0 -> absolute error fallback.
	if got := RelativeError(3, 0, 0); got != 3 {
		t.Errorf("degenerate RelativeError = %g, want 3", got)
	}
}

func TestRho(t *testing.T) {
	if got := Rho(1600000); got != 1600 {
		t.Errorf("Rho(1.6M) = %g, want 1600", got)
	}
}

func TestAbsoluteError(t *testing.T) {
	if got := AbsoluteError(3, 10); got != 7 {
		t.Errorf("AbsoluteError = %g, want 7", got)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 1..100: p25 = 25.75, median = 50.5, p75 = 75.25, p95 = 95.05
	// (type-7 interpolation), mean = 50.5.
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i + 1)
	}
	c := Summarize(sample)
	if math.Abs(c.Median-50.5) > 1e-9 {
		t.Errorf("Median = %g, want 50.5", c.Median)
	}
	if math.Abs(c.Mean-50.5) > 1e-9 {
		t.Errorf("Mean = %g, want 50.5", c.Mean)
	}
	if math.Abs(c.P25-25.75) > 1e-9 {
		t.Errorf("P25 = %g, want 25.75", c.P25)
	}
	if math.Abs(c.P75-75.25) > 1e-9 {
		t.Errorf("P75 = %g, want 75.25", c.P75)
	}
	if math.Abs(c.P95-95.05) > 1e-9 {
		t.Errorf("P95 = %g, want 95.05", c.P95)
	}
	if c.N != 100 {
		t.Errorf("N = %d, want 100", c.N)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if c := Summarize(nil); c.N != 0 || c.Mean != 0 {
		t.Errorf("empty summarize = %+v", c)
	}
	c := Summarize([]float64{7})
	if c.P25 != 7 || c.Median != 7 || c.P95 != 7 || c.Mean != 7 {
		t.Errorf("single-element summarize = %+v", c)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	Summarize(sample)
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	a := Summarize([]float64{5, 3, 9, 1, 7})
	b := Summarize([]float64{1, 3, 5, 7, 9})
	if a != b {
		t.Errorf("order dependence: %+v vs %+v", a, b)
	}
}

func TestCandlestickString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3}).String()
	if s == "" {
		t.Error("empty String()")
	}
}

// TestGenerateMigrationBitIdentical locks in that the noise.Source-based
// Generate draws the exact workload the historical *rand.Rand-based
// signature produced for the same seed (captured before the migration):
// noise.NewSource wraps rand.New(rand.NewSource(seed)), so seeded
// evaluation workloads are stable across the API change.
func TestGenerateMigrationBitIdentical(t *testing.T) {
	dom := geom.MustDomain(0, 0, 100, 100)
	qs, err := Generate(noise.NewSource(42), dom, 10, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Rect{
		{MinX: 33.572552494196934, MinY: 5.2800397434814332, MaxX: 43.572552494196934, MaxY: 25.280039743481431},
		{MinX: 54.368446640277782, MinY: 16.705496244372732, MaxX: 64.368446640277782, MaxY: 36.705496244372732},
		{MinX: 3.9436612739436874, MinY: 30.655463993790853, MaxX: 13.943661273943688, MaxY: 50.655463993790853},
		{MinX: 73.158942233194082, MinY: 30.755667995556927, MaxX: 83.158942233194082, MaxY: 50.755667995556927},
	}
	if len(qs) != len(want) {
		t.Fatalf("got %d rects, want %d", len(qs), len(want))
	}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("rect %d = %v, want %v (pre-migration draw)", i, qs[i], want[i])
		}
	}
}

func TestGenerateNilSource(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	if _, err := Generate(nil, dom, 1, 1, 5); err == nil {
		t.Error("nil source accepted")
	}
}
