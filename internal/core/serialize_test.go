package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

func TestUGSerializeRoundTrip(t *testing.T) {
	dom := geom.MustDomain(-10, 5, 30, 45)
	pts := clusteredPoints(41, 5000, dom)
	orig, err := BuildUniformGrid(pts, dom, 0.7, UGOptions{GridSize: 17}, noise.NewSource(41))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseUniformGrid(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GridSize() != 17 || loaded.Epsilon() != 0.7 {
		t.Errorf("metadata lost: m=%d eps=%g", loaded.GridSize(), loaded.Epsilon())
	}
	// Every query must answer identically.
	for _, r := range []geom.Rect{
		geom.NewRect(-10, 5, 30, 45),
		geom.NewRect(0, 10, 15, 30),
		geom.NewRect(-9.5, 5.5, -2.25, 12.125),
	} {
		if a, b := orig.Query(r), loaded.Query(r); a != b {
			t.Errorf("Query(%v): %g before, %g after round trip", r, a, b)
		}
	}
}

func TestAGSerializeRoundTrip(t *testing.T) {
	dom := geom.MustDomain(0, 0, 20, 20)
	pts := clusteredPoints(42, 8000, dom)
	orig, err := BuildAdaptiveGrid(pts, dom, 1.2, AGOptions{M1: 6, Alpha: 0.4}, noise.NewSource(42))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseAdaptiveGrid(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.M1() != 6 || loaded.Alpha() != 0.4 || loaded.Epsilon() != 1.2 {
		t.Errorf("metadata lost: m1=%d alpha=%g eps=%g", loaded.M1(), loaded.Alpha(), loaded.Epsilon())
	}
	if loaded.LeafCells() != orig.LeafCells() {
		t.Errorf("leaf cells %d != %d", loaded.LeafCells(), orig.LeafCells())
	}
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 20, 20),
		geom.NewRect(3.3, 4.4, 15.5, 16.6),
		geom.NewRect(9.99, 9.99, 10.01, 10.01),
	} {
		a, b := orig.Query(r), loaded.Query(r)
		if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Errorf("Query(%v): %g before, %g after round trip", r, a, b)
		}
	}
	// TotalEstimate survives.
	if math.Abs(loaded.TotalEstimate()-orig.TotalEstimate()) > 1e-9*(1+math.Abs(orig.TotalEstimate())) {
		t.Errorf("TotalEstimate %g != %g", loaded.TotalEstimate(), orig.TotalEstimate())
	}
}

func TestReadEnvelope(t *testing.T) {
	dom := geom.MustDomain(0, 0, 1, 1)
	ug, err := BuildUniformGrid(nil, dom, 1, UGOptions{GridSize: 2}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ug.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	env, err := ReadEnvelope(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if env.Format != FormatUG || env.Version != serializeVersion {
		t.Errorf("envelope = %+v", env)
	}
	if _, err := ReadEnvelope([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadEnvelope([]byte(`{"version":1}`)); err == nil {
		t.Error("missing format tag accepted")
	}
}

// corruptUG returns a valid serialized UG that f may mutate before
// re-serialization.
func corruptUG(t *testing.T, f func(m map[string]any)) []byte {
	t.Helper()
	dom := geom.MustDomain(0, 0, 4, 4)
	ug, err := BuildUniformGrid(nil, dom, 1, UGOptions{GridSize: 2}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ug.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	f(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseUniformGridRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m map[string]any)
	}{
		{"wrong format", func(m map[string]any) { m["format"] = "bogus" }},
		{"future version", func(m map[string]any) { m["version"] = 99 }},
		{"zero m", func(m map[string]any) { m["m"] = 0 }},
		{"counts length mismatch", func(m map[string]any) { m["counts"] = []float64{1, 2, 3} }},
		{"bad epsilon", func(m map[string]any) { m["epsilon"] = -1 }},
		{"bad domain", func(m map[string]any) { m["domain"] = []float64{5, 5, 1, 1} }},
		{"nan count", func(m map[string]any) { m["counts"] = []any{1.0, "NaN", 3.0, 4.0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := corruptUG(t, tc.mut)
			if _, err := ParseUniformGrid(data); err == nil {
				t.Error("corrupted synopsis accepted")
			}
		})
	}
}

func TestParseAdaptiveGridRejectsCorruption(t *testing.T) {
	dom := geom.MustDomain(0, 0, 4, 4)
	ag, err := BuildAdaptiveGrid(nil, dom, 1, AGOptions{M1: 2}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ag.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, _ := json.Marshal(m)
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"wrong format", mutate(func(m map[string]any) { m["format"] = FormatUG })},
		{"bad alpha", mutate(func(m map[string]any) { m["alpha"] = 2.0 })},
		{"cells mismatch", mutate(func(m map[string]any) { m["m1"] = 5 })},
		{"not json", []byte("{{{{")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseAdaptiveGrid(tc.data); err == nil {
				t.Error("corrupted synopsis accepted")
			}
		})
	}
}

func TestParseUGWrongKind(t *testing.T) {
	dom := geom.MustDomain(0, 0, 4, 4)
	ag, err := BuildAdaptiveGrid(nil, dom, 1, AGOptions{M1: 2}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ag.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseUniformGrid(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("AG file parsed as UG: %v", err)
	}
}
