package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// ingestTestPoints mixes uniform points with points sitting exactly on
// first-level cell edges and leaf-cell edges — the coordinates where a
// binning-arithmetic change would first show.
func ingestTestPoints(n int, dom geom.Domain, m1 int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	w1, h1 := dom.CellSize(m1, m1)
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0, 1, 2:
			pts = append(pts, geom.Point{
				X: dom.MinX + rng.Float64()*dom.Width(),
				Y: dom.MinY + rng.Float64()*dom.Height(),
			})
		case 3: // exactly on a level-1 cell edge
			pts = append(pts, geom.Point{
				X: dom.MinX + float64(rng.Intn(m1))*w1,
				Y: dom.MinY + float64(rng.Intn(m1))*h1,
			})
		default: // exactly on a leaf edge of some m2 subdivision
			ix, iy := rng.Intn(m1), rng.Intn(m1)
			cell := dom.CellRect(ix, iy, m1, m1)
			m2 := 1 + rng.Intn(8)
			pts = append(pts, geom.Point{
				X: cell.MinX + float64(rng.Intn(m2))*(cell.Width()/float64(m2)),
				Y: cell.MinY + float64(rng.Intn(m2))*(cell.Height()/float64(m2)),
			})
		}
	}
	return pts
}

func agBytes(t *testing.T, ag *AdaptiveGrid) []byte {
	t.Helper()
	b, err := ag.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func ugBytes(t *testing.T, ug *UniformGrid) []byte {
	t.Helper()
	b, err := ug.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The tentpole acceptance property: the fused single-pass AG build must
// release bytes bit-identical to the streaming multi-pass build, for
// every Workers value, index mode, and source shape — including
// chunk-boundary stream sizes and points on cell/leaf edges.
func TestAGFusedBitIdentical(t *testing.T) {
	dom := geom.MustDomain(-20, 5, 100, 65)
	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0), 0}
	// Auto plan, streaming re-scan, forced mid-scan fallback, and an
	// explicit cap that forces the index even for in-memory slices.
	limits := []int{0, -1, 100, 1 << 30}
	for _, m1 := range []int{0, 8} {
		for _, n := range []int{0, 1, geom.DefaultChunkSize, geom.DefaultChunkSize + 1, 20000} {
			pts := ingestTestPoints(n, dom, 8, int64(n)+3)
			// Reference: the legacy-shaped build — sequential, no index,
			// every pass a separate scan.
			ref, err := BuildAdaptiveGridSeq(geom.SlicePoints(pts), dom, 1,
				AGOptions{M1: m1, Workers: 1, IndexLimit: -1}, noise.NewSource(42))
			if err != nil {
				t.Fatalf("m1=%d n=%d reference: %v", m1, n, err)
			}
			want := agBytes(t, ref)
			funcSeq := geom.FuncSeq(func(fn func(geom.Point)) error {
				for _, p := range pts {
					fn(p)
				}
				return nil
			})
			for _, workers := range workerCounts {
				for _, limit := range limits {
					for name, seq := range map[string]geom.PointSeq{"slice": geom.SlicePoints(pts), "func": funcSeq} {
						got, err := BuildAdaptiveGridSeq(seq, dom, 1,
							AGOptions{M1: m1, Workers: workers, IndexLimit: limit}, noise.NewSource(42))
						if err != nil {
							t.Fatalf("m1=%d n=%d workers=%d limit=%d %s: %v", m1, n, workers, limit, name, err)
						}
						if !bytes.Equal(agBytes(t, got), want) {
							t.Fatalf("m1=%d n=%d workers=%d limit=%d %s: released bytes differ from sequential streaming build",
								m1, n, workers, limit, name)
						}
					}
				}
			}
		}
	}
}

func TestUGBitIdenticalAcrossWorkers(t *testing.T) {
	dom := geom.MustDomain(0, 0, 360, 150)
	pts := ingestTestPoints(30000, dom, 16, 9)
	for _, gridSize := range []int{0, 32} {
		ref, err := BuildUniformGridSeq(geom.SlicePoints(pts), dom, 1,
			UGOptions{GridSize: gridSize, Workers: 1}, noise.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		want := ugBytes(t, ref)
		for _, workers := range []int{2, 7, 0, runtime.GOMAXPROCS(0)} {
			got, err := BuildUniformGridSeq(geom.SlicePoints(pts), dom, 1,
				UGOptions{GridSize: gridSize, Workers: workers}, noise.NewSource(7))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !bytes.Equal(ugBytes(t, got), want) {
				t.Fatalf("m=%d workers=%d: released bytes differ (not bit-identical)", gridSize, workers)
			}
		}
	}
}

// UG's scan parallelism must not require a Forkable source — the noise
// is drawn after the scans, on the calling goroutine.
func TestUGWorkersWithPlainSource(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := ingestTestPoints(5000, dom, 4, 11)
	if _, err := BuildUniformGridSeq(geom.SlicePoints(pts), dom, 1,
		UGOptions{GridSize: 16, Workers: 4}, noise.FromRand(rand.New(rand.NewSource(1)))); err != nil {
		t.Fatalf("plain source with Workers > 1: %v", err)
	}
}

// scanSeq counts complete scans of the source, whichever view (per-point
// or chunked) the consumer uses.
type scanSeq struct {
	pts   []geom.Point
	scans *int
}

func (s scanSeq) ForEach(fn func(geom.Point)) error {
	*s.scans++
	for _, p := range s.pts {
		fn(p)
	}
	return nil
}

func (s scanSeq) ForEachChunk(fn func([]geom.Point) error) error {
	*s.scans++
	return geom.SlicePoints(s.pts).ForEachChunk(fn)
}

// The pass-fusion acceptance table: how many times each build
// configuration may read the raw source.
func TestAGScanCounts(t *testing.T) {
	dom := geom.MustDomain(0, 0, 100, 100)
	pts := ingestTestPoints(10000, dom, 8, 5)
	cases := []struct {
		name  string
		opts  AGOptions
		scans int
	}{
		// Fixed m1, fused: the one-scan build.
		{"m1-fixed-fused", AGOptions{M1: 8}, 1},
		// Fixed m1, index disabled: histogram scan + leaf re-scan.
		{"m1-fixed-streaming", AGOptions{M1: 8, IndexLimit: -1}, 2},
		// Auto m1, fused: the counting scan doubles as the gathering
		// scan, so the histogram and leaf passes run over memory.
		{"m1-auto-fused", AGOptions{}, 1},
		// Auto m1, index disabled: the legacy three scans.
		{"m1-auto-streaming", AGOptions{IndexLimit: -1}, 3},
		// Auto m1, dataset over the index budget: the count scan could
		// not gather, and the histogram pass must not re-buffer.
		{"m1-auto-over-limit", AGOptions{IndexLimit: 100}, 3},
	}
	for _, tc := range cases {
		scans := 0
		if _, err := BuildAdaptiveGridSeq(scanSeq{pts, &scans}, dom, 1, tc.opts, noise.NewSource(3)); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if scans != tc.scans {
			t.Errorf("%s: %d scans of the source, want %d", tc.name, scans, tc.scans)
		}
	}
}

func TestUGScanCounts(t *testing.T) {
	dom := geom.MustDomain(0, 0, 100, 100)
	pts := ingestTestPoints(10000, dom, 8, 6)
	for _, tc := range []struct {
		name  string
		opts  UGOptions
		scans int
	}{
		{"m-fixed", UGOptions{GridSize: 32}, 1},
		{"m-auto", UGOptions{}, 2}, // counting scan + histogram scan
	} {
		scans := 0
		if _, err := BuildUniformGridSeq(scanSeq{pts, &scans}, dom, 1, tc.opts, noise.NewSource(3)); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if scans != tc.scans {
			t.Errorf("%s: %d scans of the source, want %d", tc.name, scans, tc.scans)
		}
	}
}
