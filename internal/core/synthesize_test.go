package core

import (
	"math"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

func TestSearchCum(t *testing.T) {
	cum := []float64{1, 3, 6, 10}
	cases := []struct {
		u    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {2.5, 1}, {3, 2}, {5.9, 2}, {6, 3}, {9.99, 3},
	}
	for _, tc := range cases {
		if got := searchCum(cum, tc.u); got != tc.want {
			t.Errorf("searchCum(%g) = %d, want %d", tc.u, got, tc.want)
		}
	}
}

func TestUGSynthesizePreservesDistribution(t *testing.T) {
	// Build UG on clustered data with zero noise; the synthetic sample's
	// region masses must match the original's at grid granularity.
	dom := geom.MustDomain(0, 0, 16, 16)
	pts := clusteredPoints(31, 20000, dom)
	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{GridSize: 8}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := ug.Synthesize(40000, noise.NewSource(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != 40000 {
		t.Fatalf("synthetic size = %d, want 40000", len(synth))
	}
	origIdx, err := pointindex.New(dom, pts)
	if err != nil {
		t.Fatal(err)
	}
	synthIdx, err := pointindex.New(dom, synth)
	if err != nil {
		t.Fatal(err)
	}
	if synthIdx.Dropped() != 0 {
		t.Errorf("%d synthetic points fell outside the domain", synthIdx.Dropped())
	}
	// Compare mass fractions over grid-aligned quadrants.
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 8, 8), geom.NewRect(8, 8, 16, 16),
		geom.NewRect(0, 8, 8, 16), geom.NewRect(8, 0, 16, 8),
	} {
		origFrac := float64(origIdx.Count(r)) / float64(origIdx.Len())
		synthFrac := float64(synthIdx.Count(r)) / float64(synthIdx.Len())
		if math.Abs(origFrac-synthFrac) > 0.02 {
			t.Errorf("region %v: orig frac %.4f, synth frac %.4f", r, origFrac, synthFrac)
		}
	}
}

func TestUGSynthesizeDefaultSize(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(32, 5000, dom)
	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{GridSize: 10}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := ug.Synthesize(0, noise.NewSource(32))
	if err != nil {
		t.Fatal(err)
	}
	// Zero noise: default size equals the true count exactly.
	if len(synth) != 5000 {
		t.Errorf("default synthetic size = %d, want 5000", len(synth))
	}
}

func TestAGSynthesizePreservesDistribution(t *testing.T) {
	dom := geom.MustDomain(0, 0, 16, 16)
	pts := clusteredPoints(33, 20000, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 4}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := ag.Synthesize(30000, noise.NewSource(33))
	if err != nil {
		t.Fatal(err)
	}
	origIdx, _ := pointindex.New(dom, pts)
	synthIdx, err := pointindex.New(dom, synth)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 4, 4), geom.NewRect(4, 4, 12, 12), geom.NewRect(12, 0, 16, 16),
	} {
		origFrac := float64(origIdx.Count(r)) / float64(origIdx.Len())
		synthFrac := float64(synthIdx.Count(r)) / float64(synthIdx.Len())
		if math.Abs(origFrac-synthFrac) > 0.02 {
			t.Errorf("region %v: orig frac %.4f, synth frac %.4f", r, origFrac, synthFrac)
		}
	}
}

func TestSynthesizeEdgeCases(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	ug, err := BuildUniformGrid(nil, dom, 1, UGOptions{GridSize: 4}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	// Empty synopsis (all counts zero): nothing to sample, no error.
	synth, err := ug.Synthesize(100, noise.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != 0 {
		t.Errorf("empty synopsis produced %d points", len(synth))
	}
	// Nil rng is rejected.
	if _, err := ug.Synthesize(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSynthesizeWithNoiseClampsNegatives(t *testing.T) {
	// With real noise, some cells go negative; sampling must still work
	// and produce in-domain points only.
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(34, 500, dom)
	ug, err := BuildUniformGrid(pts, dom, 0.1, UGOptions{GridSize: 16}, noise.NewSource(34))
	if err != nil {
		t.Fatal(err)
	}
	synth, err := ug.Synthesize(1000, noise.NewSource(34))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range synth {
		if !dom.Contains(p) {
			t.Fatalf("synthetic point %d (%v) outside domain", i, p)
		}
	}
}

// TestSynthesizeMigrationBitIdentical locks in that the noise.Source-based
// Synthesize samples the exact points the historical *rand.Rand-based
// signature produced for the same seed (captured before the migration).
func TestSynthesizeMigrationBitIdentical(t *testing.T) {
	dom := geom.MustDomain(0, 0, 100, 100)
	pts := []geom.Point{{X: 10, Y: 10}, {X: 90, Y: 90}, {X: 50, Y: 40}, {X: 12, Y: 11}}
	ug, err := BuildUniformGrid(pts, dom, 1.0, UGOptions{GridSize: 4}, noise.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	synth, err := ug.Synthesize(6, noise.NewSource(99))
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{
		{X: 15.895432598216248, Y: 16.795707525600154},
		{X: 86.261997071431665, Y: 23.906889873444893},
		{X: 9.7665859490462879, Y: 4.0256521882695084},
		{X: 8.5321030406767431, Y: 0.21650559514718257},
		{X: 17.30709650156232, Y: 27.12854746696744},
		{X: 15.515893008774881, Y: 14.202633209332976},
	}
	if len(synth) != len(want) {
		t.Fatalf("got %d points, want %d", len(synth), len(want))
	}
	for i := range want {
		if synth[i] != want[i] {
			t.Errorf("point %d = %v, want %v (pre-migration draw)", i, synth[i], want[i])
		}
	}
}
