package core

import (
	"fmt"
	"math"

	"github.com/dpgrid/dpgrid/internal/geom"
)

// Method selection: the paper's guidance (sections IV and V) reduced to
// a decision rule over the quantities it is stated in — the dataset
// scale N*eps and the workload's query size. The paper's findings, in
// the order the rule applies them:
//
//  1. When Guideline 1 yields a tiny grid (N*eps small), the adaptive
//     second level has nothing to adapt: the m1 = max(10, m/4) floor
//     binds and AG degenerates to a 10x10 UG with half the budget
//     wasted on the coarse level. UG at the guideline size is strictly
//     simpler and no less accurate.
//  2. For workloads dominated by large queries (area a substantial
//     fraction of the domain), answer error is governed by the
//     boundary cells of the query, which the coarse uniform grid
//     already handles well; section V's Figure 5-7 discussion shows UG
//     within noise of AG there, so the rule keeps the simpler method.
//  3. Otherwise AG: the paper's headline result is that adaptive grids
//     dominate or match every competitor (trees, hierarchies,
//     wavelets) across datasets and budgets — hierarchies "do not help
//     much" in 2D (section IV-C) and kd-trees/privlets trail in the
//     evaluation — so nothing else is ever the static choice.
//
// Hierarchy, kd-tree, and privlet synopses remain available for
// measurement (the method-shootout path): SelectMethod encodes the
// paper's static guidance, while CompareMethods measures all of them on
// the caller's own data when empirical selection is wanted.

// MethodName identifies a synopsis construction method.
type MethodName string

// The selectable construction methods.
const (
	MethodUG        MethodName = "ug"
	MethodAG        MethodName = "ag"
	MethodHierarchy MethodName = "hierarchy"
	MethodKDTree    MethodName = "kdtree"
	MethodPrivlet   MethodName = "privlet"
)

// LargeQueryAreaFraction is the workload threshold of rule 2: a
// workload whose mean query area is at least half the domain counts as
// large-query dominated.
const LargeQueryAreaFraction = 0.5

// WorkloadShape summarizes a query workload for method selection.
type WorkloadShape struct {
	// Queries is the number of queries summarized (0 means no workload
	// information, which disables the workload rule).
	Queries int
	// MeanAreaFraction is the mean query area as a fraction of the
	// domain area, in [0, 1].
	MeanAreaFraction float64
}

// ShapeOf summarizes a concrete workload: every query is clipped to the
// domain before its area is measured, so off-domain extent does not
// inflate the fraction.
func ShapeOf(dom geom.Domain, queries []geom.Rect) WorkloadShape {
	domArea := dom.Width() * dom.Height()
	if len(queries) == 0 || !(domArea > 0) {
		return WorkloadShape{}
	}
	var sum float64
	for _, q := range queries {
		if clipped, ok := dom.Clip(q); ok {
			sum += clipped.Area() / domArea
		}
	}
	return WorkloadShape{Queries: len(queries), MeanAreaFraction: sum / float64(len(queries))}
}

// MethodChoice is SelectMethod's result: the chosen method, the grid
// parameters the guidelines suggest for it, and a human-readable reason
// operators can audit.
type MethodChoice struct {
	Method MethodName
	// GridSize is Guideline 1's size for UG choices; for AG it is the
	// suggested leaf scale (informational — the AG builder derives its
	// own per-cell sizes).
	GridSize int
	// M1 is the AG first-level size (AG choices only).
	M1 int
	// Reason explains the rule that fired.
	Reason string
}

// SelectMethod picks a construction method for n points under eps from
// the paper's guidelines plus the workload shape. It never returns an
// error: degenerate inputs fall back to the smallest UG, mirroring how
// the guideline formulas saturate.
func SelectMethod(n int, eps float64, shape WorkloadShape) MethodChoice {
	if n <= 0 || !(eps > 0) {
		return MethodChoice{
			Method:   MethodUG,
			GridSize: 1,
			Reason:   "degenerate input (no data or no budget): smallest uniform grid",
		}
	}
	m := SuggestedUGSize(float64(n), eps, DefaultC)
	rawM1 := int(math.Round(GuidelineGridSize(float64(n), eps, DefaultC) / 4))
	if rawM1 <= MinM1 {
		return MethodChoice{
			Method:   MethodUG,
			GridSize: m,
			Reason: fmt.Sprintf("N*eps too small for adaptivity (m1 floor %d binds): uniform grid at guideline size %d",
				MinM1, m),
		}
	}
	if shape.Queries > 0 && shape.MeanAreaFraction >= LargeQueryAreaFraction {
		return MethodChoice{
			Method:   MethodUG,
			GridSize: m,
			Reason: fmt.Sprintf("workload dominated by large queries (mean area %.0f%% of domain): uniform grid at guideline size %d",
				shape.MeanAreaFraction*100, m),
		}
	}
	return MethodChoice{
		Method:   MethodAG,
		GridSize: m,
		M1:       SuggestedM1(float64(n), eps, DefaultC),
		Reason:   "adaptive grid (the paper's recommended method at this scale and workload)",
	}
}
