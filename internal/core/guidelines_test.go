package core

import "testing"

// TestSuggestedUGSizeMatchesTableII pins Guideline 1 against the "UG sugg."
// column of the paper's Table II for all four datasets and both epsilon
// values. (storage is "about 9K"; N = 9200 reproduces the table's 10/30.)
func TestSuggestedUGSizeMatchesTableII(t *testing.T) {
	cases := []struct {
		dataset string
		n       float64
		eps     float64
		want    int
	}{
		{"road", 1.6e6, 1, 400},
		{"road", 1.6e6, 0.1, 126},
		{"checkin", 1e6, 1, 316},
		{"checkin", 1e6, 0.1, 100},
		{"landmark", 0.9e6, 1, 300},
		{"landmark", 0.9e6, 0.1, 95},
		{"storage", 9200, 1, 30},
		{"storage", 9200, 0.1, 10},
	}
	for _, tc := range cases {
		if got := SuggestedUGSize(tc.n, tc.eps, DefaultC); got != tc.want {
			t.Errorf("SuggestedUGSize(%s, eps=%g) = %d, want %d", tc.dataset, tc.eps, got, tc.want)
		}
	}
}

// TestSuggestedM1MatchesPaper pins the m1 rule against Figure 4's
// "suggested m1" annotations and Figure 5's A_{m1,5} labels.
func TestSuggestedM1MatchesPaper(t *testing.T) {
	cases := []struct {
		dataset string
		n       float64
		eps     float64
		want    int
	}{
		{"checkin", 1e6, 0.1, 25},    // Fig 4(b)
		{"checkin", 1e6, 1, 79},      // Fig 4(f)
		{"landmark", 0.9e6, 0.1, 24}, // Fig 4(j)
		{"landmark", 0.9e6, 1, 75},   // Fig 4(n)
		{"road", 1.6e6, 0.1, 32},     // Fig 5(a): A_{32,5}
		{"road", 1.6e6, 1, 100},      // Fig 5(c): A_{100,5}
		{"storage", 9200, 0.1, 10},   // Fig 5(m): A_{10,5} (floor at 10)
		{"storage", 9200, 1, 10},     // Fig 5(o): A_{10,5} (floor at 10)
	}
	for _, tc := range cases {
		if got := SuggestedM1(tc.n, tc.eps, DefaultC); got != tc.want {
			t.Errorf("SuggestedM1(%s, eps=%g) = %d, want %d", tc.dataset, tc.eps, got, tc.want)
		}
	}
}

func TestGuidelineGridSizeDegenerate(t *testing.T) {
	for _, tc := range []struct{ n, eps, c float64 }{
		{0, 1, 10}, {-5, 1, 10}, {100, 0, 10}, {100, 1, 0}, {100, -1, 10},
	} {
		if got := GuidelineGridSize(tc.n, tc.eps, tc.c); got != 1 {
			t.Errorf("GuidelineGridSize(%g,%g,%g) = %g, want degenerate 1", tc.n, tc.eps, tc.c, got)
		}
	}
	if got := SuggestedUGSize(0, 1, 10); got != 1 {
		t.Errorf("SuggestedUGSize on empty data = %d, want 1", got)
	}
}

func TestSuggestedM2(t *testing.T) {
	// N' = 100 points, remaining eps 0.5, c2 = 5:
	// ceil(sqrt(100*0.5/5)) = ceil(3.162) = 4.
	if got := SuggestedM2(100, 0.5, 5, DefaultMaxM2); got != 4 {
		t.Errorf("SuggestedM2(100, 0.5, 5) = %d, want 4", got)
	}
	// Negative noisy counts degrade to a single cell.
	if got := SuggestedM2(-20, 0.5, 5, DefaultMaxM2); got != 1 {
		t.Errorf("SuggestedM2(negative) = %d, want 1", got)
	}
	// The cap binds.
	if got := SuggestedM2(1e12, 1, 5, 64); got != 64 {
		t.Errorf("SuggestedM2 cap = %d, want 64", got)
	}
	// Exact squares use ceil, so a marginally larger argument bumps up.
	if got := SuggestedM2(80, 0.5, 5, DefaultMaxM2); got != 3 {
		// sqrt(80*0.5/5) = sqrt(8) = 2.83 -> 3
		t.Errorf("SuggestedM2(80, 0.5, 5) = %d, want 3", got)
	}
}

func TestSuggestedM1FloorsAtTen(t *testing.T) {
	if got := SuggestedM1(100, 0.1, DefaultC); got != MinM1 {
		t.Errorf("tiny dataset m1 = %d, want %d", got, MinM1)
	}
}
