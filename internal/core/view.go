package core

import (
	"math"

	"github.com/dpgrid/dpgrid/internal/codec"
	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/grid"
	"github.com/dpgrid/dpgrid/internal/pool"
)

// Zero-copy synopsis views — what the mmap serving path materializes.
// A view keeps the container bytes it was decoded from and answers
// queries through grid.RawPrefix tables that read the stored
// summed-area sections in place: decoding allocates descriptors
// (O(m1^2) for AG, O(1) for UG), never a float payload, and a query
// touches a handful of mapped bytes instead of a heap copy of the grid.
// The decode-time bitwise SAT check (codec.CheckSATRaw) plus
// RawPrefix's answer-identical arithmetic make a view's estimates
// bit-for-bit equal to the materializing parsers' — the differential
// suite locks that.
//
// Views borrow their bytes: the caller (dpgrid.MappedSynopsis, or any
// direct user of ParseUniformGridBinaryView/ParseAdaptiveGridBinaryView)
// must keep the underlying buffer immutable and alive for the view's
// lifetime.

// UGView is the zero-copy form of UniformGrid over a container with a
// stored SAT section.
type UGView struct {
	raw       []byte // the complete dpgridv2 container
	eps       float64
	m         int
	rawCounts []byte // counts section in place (diagnostics only)
	prefix    *grid.RawPrefix
}

// Query estimates the number of data points in r.
func (v *UGView) Query(r geom.Rect) float64 { return v.prefix.Query(r) }

// QueryBatch answers every rectangle in rs, fanned out across one
// worker per CPU, in input order.
func (v *UGView) QueryBatch(rs []geom.Rect) []float64 {
	return pool.Map(rs, 0, v.Query)
}

// GridSize returns the nominal grid size m.
func (v *UGView) GridSize() int { return v.m }

// Dims returns the actual grid dimensions.
func (v *UGView) Dims() (mx, my int) { return v.prefix.Dims() }

// Epsilon returns the total privacy budget the synopsis consumed.
func (v *UGView) Epsilon() float64 { return v.eps }

// Domain returns the synopsis domain.
func (v *UGView) Domain() geom.Domain { return v.prefix.Domain() }

// TotalEstimate returns the noisy estimate of the dataset size.
func (v *UGView) TotalEstimate() float64 { return v.prefix.Total() }

// SATBacked reports that queries are served from the stored summed-area
// section; always true for a view (containers without the section fall
// back to the materializing parser).
func (v *UGView) SATBacked() bool { return true }

// ContainerKind reports the synopsis's container kind.
func (v *UGView) ContainerKind() codec.Kind { return codec.KindUniform }

// AppendBinary appends the container verbatim — the view already is the
// serialized form, so re-encoding is a copy and trivially canonical.
func (v *UGView) AppendBinary(dst []byte) ([]byte, error) {
	return append(dst, v.raw...), nil
}

// agViewCell is agCell with a zero-copy leaves table.
type agViewCell struct {
	rect   geom.Rect
	m2     int
	total  float64 // the cell table's total (its sums section's last entry)
	leaves *grid.RawPrefix
}

// AGView is the zero-copy form of AdaptiveGrid over a container with a
// stored SAT section. Its level-1 table serves interior block sums from
// the mapped SAT trailer; boundary cells query their mapped per-cell
// sums tables.
type AGView struct {
	raw    []byte // the complete dpgridv2 container
	eps    float64
	alpha  float64
	m1     int
	level1 *grid.RawPrefix
	cells  []agViewCell // row-major m1*m1
}

// Query estimates the number of data points in r. The algorithm is
// AdaptiveGrid.Query verbatim — interior first-level cells through the
// level-1 block sum, boundary cells through their leaves — with every
// table read resolving into the mapped bytes.
func (v *AGView) Query(r geom.Rect) float64 {
	dom := v.level1.Domain()
	clipped, ok := dom.Clip(r)
	if !ok {
		return 0
	}
	m1 := v.m1
	w, h := dom.CellSize(m1, m1)
	bx0 := clampInt(int(math.Floor((clipped.MinX-dom.MinX)/w)), 0, m1-1)
	by0 := clampInt(int(math.Floor((clipped.MinY-dom.MinY)/h)), 0, m1-1)
	// Half-open high edges, mirroring AdaptiveGrid.Query: exclude the
	// zero-overlap column/row when MaxX/MaxY land exactly on a boundary.
	bx1 := clampInt(int(math.Ceil((clipped.MaxX-dom.MinX)/w))-1, bx0, m1-1)
	by1 := clampInt(int(math.Ceil((clipped.MaxY-dom.MinY)/h))-1, by0, m1-1)

	// Aligned fast path, mirroring AdaptiveGrid.Query: a rect containing
	// every touched first-level cell is one O(1) block sum.
	lo, hi := &v.cells[by0*m1+bx0], &v.cells[by1*m1+bx1]
	if clipped.ContainsRect(geom.NewRect(lo.rect.MinX, lo.rect.MinY, hi.rect.MaxX, hi.rect.MaxY)) {
		return v.level1.BlockSum(bx0, by0, bx1+1, by1+1)
	}

	var total float64
	if bx0+1 < bx1 && by0+1 < by1 {
		total += v.level1.BlockSum(bx0+1, by0+1, bx1, by1)
	}

	cellQuery := func(bx, by int) {
		cell := &v.cells[by*m1+bx]
		if clipped.ContainsRect(cell.rect) {
			total += cell.total
			return
		}
		total += cell.leaves.Query(clipped)
	}
	for by := by0; by <= by1; by++ {
		cellQuery(bx0, by)
		if bx1 != bx0 {
			cellQuery(bx1, by)
		}
	}
	for bx := bx0 + 1; bx < bx1; bx++ {
		cellQuery(bx, by0)
		if by1 != by0 {
			cellQuery(bx, by1)
		}
	}
	return total
}

// QueryBatch answers every rectangle in rs, fanned out across one
// worker per CPU, in input order.
func (v *AGView) QueryBatch(rs []geom.Rect) []float64 {
	return pool.Map(rs, 0, v.Query)
}

// M1 returns the first-level grid size.
func (v *AGView) M1() int { return v.m1 }

// Alpha returns the budget split parameter.
func (v *AGView) Alpha() float64 { return v.alpha }

// Epsilon returns the total privacy budget consumed.
func (v *AGView) Epsilon() float64 { return v.eps }

// Domain returns the synopsis domain.
func (v *AGView) Domain() geom.Domain { return v.level1.Domain() }

// TotalEstimate returns the noisy estimate of the dataset size.
func (v *AGView) TotalEstimate() float64 { return v.level1.Total() }

// SATBacked reports that queries are served from the stored summed-area
// section; always true for a view.
func (v *AGView) SATBacked() bool { return true }

// ContainerKind reports the synopsis's container kind.
func (v *AGView) ContainerKind() codec.Kind { return codec.KindAdaptive }

// AppendBinary appends the container verbatim (see UGView.AppendBinary).
func (v *AGView) AppendBinary(dst []byte) ([]byte, error) {
	return append(dst, v.raw...), nil
}
