package core

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

func parallelTestPoints(n int, seed int64, dom geom.Domain) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: dom.MinX + rng.Float64()*dom.Width(),
			Y: dom.MinY + rng.Float64()*dom.Height(),
		}
	}
	return pts
}

// The acceptance criterion of the parallel build: for the same seed,
// every Workers value must release the bit-identical synopsis.
func TestParallelAGBitIdentical(t *testing.T) {
	dom, _ := geom.NewDomain(0, 0, 100, 100)
	pts := parallelTestPoints(20000, 1, dom)
	opts := AGOptions{M1: 8}

	build := func(workers int) *AdaptiveGrid {
		o := opts
		o.Workers = workers
		ag, err := BuildAdaptiveGrid(pts, dom, 1, o, noise.NewSource(99))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ag
	}
	ref := build(1)
	for _, workers := range []int{0, 2, 3, 8, runtime.GOMAXPROCS(0) * 2} {
		got := build(workers)
		if got.M1() != ref.M1() {
			t.Fatalf("workers=%d: m1 %d != %d", workers, got.M1(), ref.M1())
		}
		for iy := 0; iy < ref.M1(); iy++ {
			for ix := 0; ix < ref.M1(); ix++ {
				if got.CellM2(ix, iy) != ref.CellM2(ix, iy) {
					t.Fatalf("workers=%d cell (%d,%d): m2 %d != %d",
						workers, ix, iy, got.CellM2(ix, iy), ref.CellM2(ix, iy))
				}
				if got.CellTotal(ix, iy) != ref.CellTotal(ix, iy) {
					t.Fatalf("workers=%d cell (%d,%d): total %v != %v (not bit-identical)",
						workers, ix, iy, got.CellTotal(ix, iy), ref.CellTotal(ix, iy))
				}
			}
		}
		// Leaf-level agreement: random queries must match exactly, not
		// merely within tolerance.
		qrng := rand.New(rand.NewSource(5))
		for q := 0; q < 200; q++ {
			x0, y0 := qrng.Float64()*100, qrng.Float64()*100
			x1, y1 := qrng.Float64()*100, qrng.Float64()*100
			r := geom.NewRect(x0, y0, x1, y1)
			if a, b := got.Query(r), ref.Query(r); a != b {
				t.Fatalf("workers=%d query %v: %v != %v (not bit-identical)", workers, r, a, b)
			}
		}
	}
}

// With the m1 rule and N-estimate enabled, the pre-parallel budget draws
// come from the parent stream; determinism must survive those too.
func TestParallelAGBitIdenticalWithDefaults(t *testing.T) {
	dom, _ := geom.NewDomain(-50, -20, 70, 90)
	pts := parallelTestPoints(30000, 2, dom)
	opts := AGOptions{NBudgetFrac: 0.02}

	ref, err := BuildAdaptiveGrid(pts, dom, 0.5, opts, noise.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 7
	got, err := BuildAdaptiveGrid(pts, dom, 0.5, opts, noise.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEstimate() != ref.TotalEstimate() {
		t.Fatalf("total estimate %v != %v", got.TotalEstimate(), ref.TotalEstimate())
	}
	r := geom.NewRect(-10, 0, 45, 60)
	if a, b := got.Query(r), ref.Query(r); a != b {
		t.Fatalf("query: %v != %v", a, b)
	}
}

func TestParallelAGRequiresForkableSource(t *testing.T) {
	dom, _ := geom.NewDomain(0, 0, 10, 10)
	pts := parallelTestPoints(100, 3, dom)
	src := noise.FromRand(rand.New(rand.NewSource(1)))

	// Explicit parallelism without a forkable source must fail loudly.
	_, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 2, Workers: 4}, src)
	if err == nil || !strings.Contains(err.Error(), "Forkable") {
		t.Fatalf("want Forkable error, got %v", err)
	}
	// The zero value falls back to the sequential single-stream path.
	if _, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 2}, src); err != nil {
		t.Fatalf("sequential fallback failed: %v", err)
	}
}

// Zero-noise source: the parallel path must preserve exact bookkeeping
// (forks of Zero are Zero), so counts equal the exact histogram.
func TestParallelAGZeroNoiseExact(t *testing.T) {
	dom, _ := geom.NewDomain(0, 0, 8, 8)
	pts := parallelTestPoints(4000, 4, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 4, Workers: 4}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	got := ag.Query(geom.NewRect(0, 0, 8, 8))
	if want := float64(len(pts)); got != want {
		t.Fatalf("zero-noise total = %v, want %v", got, want)
	}
}

func TestQueryBatchMatchesQuery(t *testing.T) {
	dom, _ := geom.NewDomain(0, 0, 100, 100)
	pts := parallelTestPoints(10000, 5, dom)

	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{GridSize: 30}, noise.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 6}, noise.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}

	qrng := rand.New(rand.NewSource(6))
	rects := make([]geom.Rect, 500)
	for i := range rects {
		rects[i] = geom.NewRect(qrng.Float64()*100, qrng.Float64()*100, qrng.Float64()*100, qrng.Float64()*100)
	}

	for _, tc := range []struct {
		name  string
		batch func([]geom.Rect) []float64
		one   func(geom.Rect) float64
	}{
		{"UG", ug.QueryBatch, ug.Query},
		{"AG", ag.QueryBatch, ag.Query},
	} {
		got := tc.batch(rects)
		if len(got) != len(rects) {
			t.Fatalf("%s: %d results for %d rects", tc.name, len(got), len(rects))
		}
		for i, r := range rects {
			if want := tc.one(r); got[i] != want {
				t.Fatalf("%s rect %d: batch %v != single %v", tc.name, i, got[i], want)
			}
		}
	}
	if got := ug.QueryBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// Reusing one Source instance across builds must yield FRESH noise each
// time: Fork(i) is state-independent by contract, so without a per-build
// nonce two releases would carry bit-identical level-2 noise, letting an
// observer subtract them to cancel the noise exactly.
func TestSourceReuseGivesFreshNoise(t *testing.T) {
	dom, _ := geom.NewDomain(0, 0, 10, 10)
	pts := parallelTestPoints(2000, 7, dom)
	src := noise.NewSource(5)
	build := func() *AdaptiveGrid {
		ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 3, Workers: 2}, src)
		if err != nil {
			t.Fatal(err)
		}
		return ag
	}
	a, b := build(), build()
	same := true
	for iy := 0; iy < 3 && same; iy++ {
		for ix := 0; ix < 3; ix++ {
			if a.CellTotal(ix, iy) != b.CellTotal(ix, iy) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two builds reusing one source released identical noise")
	}
}
