package core

import (
	"strings"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
)

func TestShapeOf(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	if s := ShapeOf(dom, nil); s != (WorkloadShape{}) {
		t.Fatalf("empty workload shape = %+v", s)
	}
	s := ShapeOf(dom, []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, // full domain: 1.0
		{MinX: 0, MinY: 0, MaxX: 5, MaxY: 10},  // half: 0.5
	})
	if s.Queries != 2 || s.MeanAreaFraction != 0.75 {
		t.Fatalf("shape = %+v, want 2 queries at 0.75", s)
	}
	// Off-domain extent must be clipped, not counted.
	s = ShapeOf(dom, []geom.Rect{{MinX: -10, MinY: -10, MaxX: 20, MaxY: 20}})
	if s.MeanAreaFraction != 1 {
		t.Fatalf("clipped fraction = %g, want 1", s.MeanAreaFraction)
	}
}

func TestSelectMethod(t *testing.T) {
	small := WorkloadShape{Queries: 100, MeanAreaFraction: 0.01}
	large := WorkloadShape{Queries: 100, MeanAreaFraction: 0.9}
	cases := []struct {
		name   string
		n      int
		eps    float64
		shape  WorkloadShape
		want   MethodName
		reason string
	}{
		{"degenerate n", 0, 1, small, MethodUG, "degenerate"},
		{"degenerate eps", 1000, 0, small, MethodUG, "degenerate"},
		// sqrt(10000*1/10)/4 ≈ 7.9 < 10: the m1 floor binds.
		{"small scale", 10_000, 1, small, MethodUG, "m1 floor"},
		// sqrt(1e6*1/10)/4 ≈ 79: plenty of adaptivity.
		{"large scale small queries", 1_000_000, 1, small, MethodAG, "adaptive"},
		{"large scale large queries", 1_000_000, 1, large, MethodUG, "large queries"},
		{"large scale no workload info", 1_000_000, 1, WorkloadShape{}, MethodAG, "adaptive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SelectMethod(tc.n, tc.eps, tc.shape)
			if got.Method != tc.want {
				t.Fatalf("method = %q (%s), want %q", got.Method, got.Reason, tc.want)
			}
			if !strings.Contains(got.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", got.Reason, tc.reason)
			}
			if got.GridSize < 1 {
				t.Errorf("grid size %d < 1", got.GridSize)
			}
			if got.Method == MethodAG && got.M1 <= MinM1 {
				t.Errorf("AG chosen with m1 %d at the floor", got.M1)
			}
		})
	}
}

// TestSelectMethodMatchesGuidelines pins the AG threshold to the m1
// formula itself: the rule flips from UG to AG exactly where
// round(sqrt(n*eps/c)/4) leaves the MinM1 floor.
func TestSelectMethodMatchesGuidelines(t *testing.T) {
	eps := 1.0
	prev := MethodUG
	var flips int
	for n := 1000; n <= 2_000_000; n += 1000 {
		got := SelectMethod(n, eps, WorkloadShape{})
		if got.Method != prev {
			flips++
			rawM1 := SuggestedM1(float64(n), eps, DefaultC)
			if rawM1 <= MinM1 {
				t.Fatalf("flipped to %q at n=%d where suggested m1 %d is still at the floor", got.Method, n, rawM1)
			}
			prev = got.Method
		}
	}
	if flips != 1 {
		t.Fatalf("method flipped %d times over the n sweep, want exactly 1 (UG -> AG)", flips)
	}
}
