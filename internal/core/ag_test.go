package core

import (
	"math"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

func TestBuildAdaptiveGridValidation(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(1, 100, dom)
	src := noise.NewSource(1)
	cases := []struct {
		name string
		eps  float64
		opts AGOptions
		src  noise.Source
	}{
		{"zero eps", 0, AGOptions{}, src},
		{"nil source", 1, AGOptions{}, nil},
		{"alpha=1", 1, AGOptions{Alpha: 1}, src},
		{"alpha<0", 1, AGOptions{Alpha: -0.5}, src},
		{"negative m1", 1, AGOptions{M1: -2}, src},
		{"negative c", 1, AGOptions{C: -1}, src},
		{"negative c2", 1, AGOptions{C2: -1}, src},
		{"negative maxM2", 1, AGOptions{MaxM2: -1}, src},
		{"NBudgetFrac=1", 1, AGOptions{NBudgetFrac: 1}, src},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildAdaptiveGrid(pts, dom, tc.eps, tc.opts, tc.src); err == nil {
				t.Errorf("accepted, want error")
			}
		})
	}
}

func TestAGZeroNoiseExactOnLeafAlignedQueries(t *testing.T) {
	dom := geom.MustDomain(0, 0, 8, 8)
	pts := clusteredPoints(11, 4000, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 4}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := pointindex.New(dom, pts)
	if err != nil {
		t.Fatal(err)
	}
	// First-level cells are 2x2 units; queries aligned to first-level
	// boundaries must be exact under zero noise (CI preserves exactness).
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 8, 8),
		geom.NewRect(2, 2, 6, 8),
		geom.NewRect(0, 0, 2, 2),
		geom.NewRect(4, 0, 8, 4),
	} {
		got := ag.Query(r)
		want := float64(idx.Count(r))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("zero-noise AG Query(%v) = %g, want %g", r, got, want)
		}
	}
}

func TestAGZeroNoiseTotalEstimate(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(12, 3000, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.TotalEstimate(); math.Abs(got-3000) > 1e-6 {
		t.Errorf("TotalEstimate = %g, want 3000", got)
	}
}

func TestAGConsistencyLeavesSumToCellTotal(t *testing.T) {
	// After constrained inference, each cell's leaves must sum to its
	// reconciled total v' — with real noise, not just the Zero source.
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := clusteredPoints(13, 5000, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 0.5, AGOptions{M1: 5}, noise.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	for iy := 0; iy < ag.M1(); iy++ {
		for ix := 0; ix < ag.M1(); ix++ {
			cell := &ag.cells[iy*ag.m1+ix]
			leafSum := cell.leaves.Total()
			if math.Abs(leafSum-cell.total) > 1e-6*(1+math.Abs(cell.total)) {
				t.Errorf("cell (%d,%d): leaves sum %g != total %g", ix, iy, leafSum, cell.total)
			}
		}
	}
}

func TestAGQueryEqualsCellDecomposition(t *testing.T) {
	// The fast path (interior block + boundary cells) must equal the slow
	// path (query every cell's leaves) exactly.
	dom := geom.MustDomain(0, 0, 12, 12)
	pts := clusteredPoints(14, 8000, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 6}, noise.NewSource(14))
	if err != nil {
		t.Fatal(err)
	}
	slow := func(r geom.Rect) float64 {
		clipped, ok := dom.Clip(r)
		if !ok {
			return 0
		}
		var total float64
		for k := range ag.cells {
			total += ag.cells[k].leaves.Query(clipped)
		}
		return total
	}
	for _, r := range []geom.Rect{
		geom.NewRect(0.3, 0.7, 11.2, 11.9),
		geom.NewRect(3.14, 2.71, 8.8, 9.9),
		geom.NewRect(0, 0, 12, 12),
		geom.NewRect(5.5, 5.5, 6.5, 6.5),         // inside a single first-level cell
		geom.NewRect(1.999, 1.999, 2.001, 2.001), // straddles a cell corner
	} {
		got, want := ag.Query(r), slow(r)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("Query(%v) = %g, slow path = %g", r, got, want)
		}
	}
}

func TestAGAdaptivePartitioning(t *testing.T) {
	// Dense cells must receive finer second-level grids than empty cells.
	dom := geom.MustDomain(0, 0, 10, 10)
	// All 4000 points in the lower-left first-level cell of a 2x2 grid.
	pts := make([]geom.Point, 0, 4000)
	for _, p := range uniformPoints(15, 4000, geom.MustDomain(0, 0, 5, 5)) {
		pts = append(pts, p)
	}
	ag, err := BuildAdaptiveGrid(pts, dom, 1, AGOptions{M1: 2}, noise.NewSource(15))
	if err != nil {
		t.Fatal(err)
	}
	dense := ag.CellM2(0, 0)
	empty := ag.CellM2(1, 1)
	if dense <= empty {
		t.Errorf("dense cell m2 = %d should exceed empty cell m2 = %d", dense, empty)
	}
	if empty > 2 {
		t.Errorf("empty cell m2 = %d, want <= 2 (noise-only counts are small)", empty)
	}
	// Guideline 2 for the dense cell: N' ~ 4000, remaining eps 0.5, c2 5:
	// ceil(sqrt(4000*0.5/5)) = ceil(20) = 20 (+- noise).
	if dense < 17 || dense > 23 {
		t.Errorf("dense cell m2 = %d, want ~20", dense)
	}
}

func TestAGUsesSuggestedM1(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(16, 100000, dom)
	eps := 1.0
	ag, err := BuildAdaptiveGrid(pts, dom, eps, AGOptions{}, noise.NewSource(16))
	if err != nil {
		t.Fatal(err)
	}
	want := SuggestedM1(100000, eps, DefaultC) // sqrt(10000)=100 -> 25
	if got := ag.M1(); got != want {
		t.Errorf("M1 = %d, want %d", got, want)
	}
}

func TestAGBudgetSplit(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(17, 1000, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 2.0, AGOptions{Alpha: 0.25}, noise.NewSource(17))
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := ag.BudgetSplit()
	if math.Abs(l1-0.5) > 1e-12 || math.Abs(l2-1.5) > 1e-12 {
		t.Errorf("BudgetSplit = (%g, %g), want (0.5, 1.5)", l1, l2)
	}
	if ag.Alpha() != 0.25 {
		t.Errorf("Alpha = %g, want 0.25", ag.Alpha())
	}
}

func TestAGDeterministicGivenSeed(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := clusteredPoints(18, 3000, dom)
	build := func() float64 {
		ag, err := BuildAdaptiveGrid(pts, dom, 0.5, AGOptions{}, noise.NewSource(77))
		if err != nil {
			t.Fatal(err)
		}
		return ag.Query(geom.NewRect(1.2, 3.4, 7.6, 9.8))
	}
	if a, b := build(), build(); a != b {
		t.Errorf("same seed produced different answers: %g vs %g", a, b)
	}
}

func TestAGConstrainedInferenceReducesNoiseOnCellQueries(t *testing.T) {
	// For queries exactly matching a first-level cell, the reconciled
	// count v' must have lower error variance than the raw level-1 count
	// (that is the point of CI). Empirically compare mean squared errors
	// on an empty dataset where the truth is 0.
	dom := geom.MustDomain(0, 0, 4, 4)
	const trials = 300
	var mseCI float64
	const eps = 1.0
	const alpha = 0.5
	for i := 0; i < trials; i++ {
		ag, err := BuildAdaptiveGrid(nil, dom, eps, AGOptions{M1: 2, Alpha: alpha}, noise.NewSource(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		v := ag.CellTotal(0, 0)
		mseCI += v * v
	}
	mseCI /= trials
	// Raw level-1 variance would be 2/(alpha*eps)^2 = 8. CI must do better.
	rawVar := 2 / (alpha * eps) / (alpha * eps)
	if mseCI >= rawVar {
		t.Errorf("CI cell variance %g not below raw level-1 variance %g", mseCI, rawVar)
	}
}

func TestAGM2OneCellStillConsistent(t *testing.T) {
	// Sparse data forces m2 = 1 everywhere; the synopsis must still be
	// consistent and answer queries.
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(19, 5, dom)
	ag, err := BuildAdaptiveGrid(pts, dom, 0.1, AGOptions{M1: 10}, noise.NewSource(19))
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.MaxM2(); got > 2 {
		t.Errorf("MaxM2 = %d on a 5-point dataset, want <= 2", got)
	}
	_ = ag.Query(geom.NewRect(0, 0, 10, 10)) // must not panic
}

func TestAGCellAccessorsOutOfRange(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	ag, err := BuildAdaptiveGrid(nil, dom, 1, AGOptions{M1: 3}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.CellM2(-1, 0); got != 0 {
		t.Errorf("CellM2 out of range = %d, want 0", got)
	}
	if got := ag.CellTotal(3, 0); got != 0 {
		t.Errorf("CellTotal out of range = %g, want 0", got)
	}
}

func TestAGLeafCellsAccounting(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	ag, err := BuildAdaptiveGrid(uniformPoints(20, 10000, dom), dom, 1, AGOptions{M1: 4}, noise.NewSource(20))
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for iy := 0; iy < 4; iy++ {
		for ix := 0; ix < 4; ix++ {
			m2 := ag.CellM2(ix, iy)
			want += m2 * m2
		}
	}
	if got := ag.LeafCells(); got != want {
		t.Errorf("LeafCells = %d, want %d", got, want)
	}
}
