package core

import (
	"bytes"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// FuzzParseUniformGrid: the synopsis parser must never panic and must
// either return a valid, queryable synopsis or an error, no matter the
// input bytes. Run with `go test -fuzz=FuzzParseUniformGrid ./internal/core`.
func FuzzParseUniformGrid(f *testing.F) {
	// Seed corpus: a valid file, a truncation of it, and garbage.
	dom := geom.MustDomain(0, 0, 4, 4)
	ug, err := BuildUniformGrid(nil, dom, 1, UGOptions{GridSize: 2}, noise.Zero)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ug.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"format":"dpgrid/uniform-grid","version":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"format":"dpgrid/uniform-grid","version":1,"domain":[0,0,1,1],"epsilon":1,"m":1,"counts":[1e308]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		syn, err := ParseUniformGrid(data)
		if err != nil {
			return
		}
		// A successfully parsed synopsis must answer queries with finite
		// values.
		got := syn.Query(geom.NewRect(-1e9, -1e9, 1e9, 1e9))
		if got != got { // NaN check
			t.Fatalf("parsed synopsis produced NaN answer")
		}
	})
}

// FuzzParseAdaptiveGrid mirrors FuzzParseUniformGrid for AG files.
func FuzzParseAdaptiveGrid(f *testing.F) {
	dom := geom.MustDomain(0, 0, 4, 4)
	ag, err := BuildAdaptiveGrid(nil, dom, 1, AGOptions{M1: 2}, noise.Zero)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ag.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	f.Add([]byte(`{"format":"dpgrid/adaptive-grid","version":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		syn, err := ParseAdaptiveGrid(data)
		if err != nil {
			return
		}
		got := syn.Query(geom.NewRect(0, 0, 4, 4))
		if got != got {
			t.Fatalf("parsed synopsis produced NaN answer")
		}
	})
}
