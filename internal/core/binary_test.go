package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/dpgrid/dpgrid/internal/codec"
	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

func testUG(t *testing.T) *UniformGrid {
	t.Helper()
	dom := geom.MustDomain(-10, 5, 30, 45)
	u, err := BuildUniformGrid(clusteredPoints(61, 5000, dom), dom, 0.7, UGOptions{GridSize: 17}, noise.NewSource(61))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func testAG(t *testing.T) *AdaptiveGrid {
	t.Helper()
	dom := geom.MustDomain(0, 0, 20, 20)
	a, err := BuildAdaptiveGrid(clusteredPoints(62, 8000, dom), dom, 1.2, AGOptions{M1: 6, Alpha: 0.4}, noise.NewSource(62))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestUGBinaryRoundTripBitIdentical: encode -> decode -> encode must
// reproduce the bytes exactly, and the decoded synopsis must answer
// every query identically.
func TestUGBinaryRoundTripBitIdentical(t *testing.T) {
	orig := testUG(t)
	data, err := orig.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseUniformGridBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GridSize() != orig.GridSize() || loaded.Epsilon() != orig.Epsilon() || loaded.Domain() != orig.Domain() {
		t.Errorf("metadata lost: %+v", loaded)
	}
	again, err := loaded.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding a decoded UG changed bytes")
	}
	for _, r := range []geom.Rect{
		geom.NewRect(-10, 5, 30, 45),
		geom.NewRect(0, 10, 15, 30),
		geom.NewRect(-9.5, 5.5, -2.25, 12.125),
	} {
		if a, b := orig.Query(r), loaded.Query(r); a != b {
			t.Errorf("Query(%v): %g before, %g after round trip", r, a, b)
		}
	}
}

// TestAGBinaryRoundTripBitIdentical: the AG container persists each
// cell's prefix-sum table, so the round trip is bit-exact — unlike the
// JSON format, which re-derives leaves and re-sums.
func TestAGBinaryRoundTripBitIdentical(t *testing.T) {
	orig := testAG(t)
	data, err := orig.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseAdaptiveGridBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.M1() != orig.M1() || loaded.Alpha() != orig.Alpha() || loaded.Epsilon() != orig.Epsilon() {
		t.Errorf("metadata lost: m1=%d alpha=%g eps=%g", loaded.M1(), loaded.Alpha(), loaded.Epsilon())
	}
	again, err := loaded.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding a decoded AG changed bytes")
	}
	// Query equality is tolerance-level, not bit-level: the decoder
	// re-derives level-1 totals from the cell prefix tables, which can
	// differ from the builder's running totals by float rounding (the
	// JSON round trip has the same property).
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 20, 20),
		geom.NewRect(1.5, 2.5, 18.25, 19.75),
		geom.NewRect(7, 7, 8, 8),
	} {
		if a, b := orig.Query(r), loaded.Query(r); math.Abs(a-b) > 1e-9 {
			t.Errorf("Query(%v): %g before, %g after round trip", r, a, b)
		}
	}
	if a, b := orig.TotalEstimate(), loaded.TotalEstimate(); math.Abs(a-b) > 1e-9 {
		t.Errorf("TotalEstimate: %g vs %g", a, b)
	}
}

// TestBinaryMatchesJSONAnswers: the two formats must describe the same
// release — a synopsis loaded from binary answers exactly like one
// loaded from JSON of the same release.
func TestBinaryMatchesJSONAnswers(t *testing.T) {
	orig := testAG(t)
	bin, err := orig.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ParseAdaptiveGridBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseAdaptiveGrid(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 20, 20),
		geom.NewRect(3.3, 1.1, 12.9, 17.2),
	} {
		if a, b := fromBin.Query(r), fromJSON.Query(r); a != b {
			t.Errorf("Query(%v): binary %g, JSON %g", r, a, b)
		}
	}
}

func TestValidateMatchesParse(t *testing.T) {
	ug := testUG(t)
	ag := testAG(t)
	ugBin, _ := ug.AppendBinary(nil)
	agBin, _ := ag.AppendBinary(nil)

	info, err := ValidateUniformGridBinary(ugBin)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dom != ug.Domain() || info.Eps != ug.Epsilon() {
		t.Errorf("UG info = %+v", info)
	}
	info, err = ValidateAdaptiveGridBinary(agBin)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dom != ag.Domain() || info.Eps != ag.Epsilon() {
		t.Errorf("AG info = %+v", info)
	}

	// Validate must reject exactly what Parse rejects: every truncation
	// of each payload either passes both or fails both.
	for _, data := range [][]byte{ugBin, agBin} {
		for _, cut := range []int{0, 8, 12, len(data) / 2, len(data) - 1} {
			trunc := data[:cut]
			_, vErr := ValidateUniformGridBinary(trunc)
			_, pErr := ParseUniformGridBinary(trunc)
			if (vErr == nil) != (pErr == nil) {
				t.Errorf("cut %d: validate err %v, parse err %v", cut, vErr, pErr)
			}
		}
	}
}

// TestBinaryRejectsCorrupt: corrupt containers must fail loudly with no
// panic and no synopsis.
func TestBinaryRejectsCorrupt(t *testing.T) {
	ugBin, _ := testUG(t).AppendBinary(nil)
	agBin, _ := testAG(t).AppendBinary(nil)

	flip := func(data []byte, off int) []byte {
		out := bytes.Clone(data)
		out[off] ^= 0xFF
		return out
	}
	// Offsets: 8 magic + 2 version + 2 kind = 12; domain starts at 12.
	cases := []struct {
		name string
		ug   bool
		data []byte
	}{
		{"ug empty", true, nil},
		{"ug wrong kind", true, agBin},
		{"ug truncated", true, ugBin[:len(ugBin)/2]},
		{"ug trailing bytes", true, append(bytes.Clone(ugBin), 0)},
		// 12-byte header + 32-byte domain + 8-byte eps + 12 bytes of
		// dims = byte 64: the counts-section length prefix.
		{"ug corrupt section length", true, flip(ugBin, 64)},
		{"ag wrong kind", false, ugBin},
		{"ag truncated", false, agBin[:len(agBin)-4]},
		{"ag trailing bytes", false, append(bytes.Clone(agBin), 1, 2)},
	}
	for _, tc := range cases {
		var err error
		if tc.ug {
			_, err = ParseUniformGridBinary(tc.data)
		} else {
			_, err = ParseAdaptiveGridBinary(tc.data)
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// buildRawUG hand-assembles a UG container so tests can plant invalid
// field values that AppendBinary would never emit.
func buildRawUG(dom [4]float64, eps float64, m, mx, my uint32, counts []float64) []byte {
	e := codec.NewEnc(nil, codec.KindUniform)
	for _, v := range dom {
		e.F64(v)
	}
	e.F64(eps)
	e.U32(m)
	e.U32(mx)
	e.U32(my)
	e.F64s(counts)
	return e.Bytes()
}

func TestBinaryRejectsInvalidFields(t *testing.T) {
	dom := [4]float64{0, 0, 1, 1}
	cases := []struct {
		name string
		data []byte
	}{
		{"zero epsilon", buildRawUG(dom, 0, 1, 1, 1, []float64{0})},
		{"nan epsilon", buildRawUG(dom, math.NaN(), 1, 1, 1, []float64{0})},
		{"zero m", buildRawUG(dom, 1, 0, 1, 1, []float64{0})},
		{"zero mx", buildRawUG(dom, 1, 1, 0, 1, []float64{})},
		{"counts mismatch", buildRawUG(dom, 1, 1, 2, 2, []float64{0, 0, 0})},
		{"nan count", buildRawUG(dom, 1, 1, 1, 1, []float64{math.NaN()})},
		{"inf count", buildRawUG(dom, 1, 1, 1, 1, []float64{math.Inf(-1)})},
		{"bad domain order", buildRawUG([4]float64{1, 0, 0, 1}, 1, 1, 1, 1, []float64{0})},
		{"nan domain", buildRawUG([4]float64{math.NaN(), 0, 1, 1}, 1, 1, 1, 1, []float64{0})},
		{"huge dims", buildRawUG(dom, 1, 1, 1<<20, 1<<20, []float64{0})},
	}
	for _, tc := range cases {
		if _, err := ParseUniformGridBinary(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := ValidateUniformGridBinary(tc.data); err == nil {
			t.Errorf("%s: validate accepted", tc.name)
		}
	}
}

// TestAGBinaryRejectsBadSumsTable: a sums section with a non-zero
// border or non-finite entry is corrupt.
func TestAGBinaryRejectsBadSumsTable(t *testing.T) {
	mkAG := func(sums []float64) []byte {
		e := codec.NewEnc(nil, codec.KindAdaptive)
		for _, v := range [4]float64{0, 0, 1, 1} {
			e.F64(v)
		}
		e.F64(1)   // eps
		e.F64(0.5) // alpha
		e.U32(1)   // m1
		e.U32(1)   // cell 0: m2 = 1 -> 2x2 sums
		e.F64s(sums)
		return e.Bytes()
	}
	if _, err := ParseAdaptiveGridBinary(mkAG([]float64{0, 0, 0, 5})); err != nil {
		t.Fatalf("valid minimal AG rejected: %v", err)
	}
	for name, sums := range map[string][]float64{
		"nonzero border": {1, 0, 0, 5},
		"nan sum":        {0, 0, 0, math.NaN()},
		"short table":    {0, 0, 0},
	} {
		if _, err := ParseAdaptiveGridBinary(mkAG(sums)); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := ValidateAdaptiveGridBinary(mkAG(sums)); err == nil {
			t.Errorf("%s: validate accepted", name)
		}
	}
}

// TestBinarySmallerThanJSON: the whole point of the codec — at matched
// cell counts the binary file must be smaller than the JSON one.
func TestBinarySmallerThanJSON(t *testing.T) {
	for _, tc := range []struct {
		name string
		bin  func() ([]byte, error)
		json func() (int64, error)
	}{
		{"ug", func() ([]byte, error) { return testUG(t).AppendBinary(nil) },
			func() (int64, error) { var b bytes.Buffer; return testUG(t).WriteTo(&b) }},
		{"ag", func() ([]byte, error) { return testAG(t).AppendBinary(nil) },
			func() (int64, error) { var b bytes.Buffer; return testAG(t).WriteTo(&b) }},
	} {
		bin, err := tc.bin()
		if err != nil {
			t.Fatal(err)
		}
		jsonLen, err := tc.json()
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(bin)) >= jsonLen {
			t.Errorf("%s: binary %d bytes >= JSON %d bytes", tc.name, len(bin), jsonLen)
		}
	}
}

// TestBinaryLayoutIsLittleEndian pins the wire layout: the epsilon
// field of a UG container sits right after the 12-byte header + 32-byte
// domain, little endian.
func TestBinaryLayoutIsLittleEndian(t *testing.T) {
	data := buildRawUG([4]float64{0, 0, 1, 1}, 0.75, 1, 1, 1, []float64{3})
	off := 12 + 32
	got := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	if got != 0.75 {
		t.Fatalf("epsilon on the wire = %g, want 0.75", got)
	}
}

// buildRawUGSAT is buildRawUG plus an arbitrary summed-area trailer, so
// tests can plant trailers the encoder would never emit. A nil sums
// slice with tag set writes the tag and a zero-length section; tag 0
// writes codec.SATTag.
func buildRawUGSAT(counts, sums []float64, tag uint16) []byte {
	e := codec.NewEnc(nil, codec.KindUniform)
	for _, v := range [4]float64{0, 0, 1, 1} {
		e.F64(v)
	}
	e.F64(1) // eps
	e.U32(2) // m
	e.U32(2) // mx
	e.U32(2) // my
	e.F64s(counts)
	if tag == 0 {
		tag = codec.SATTag
	}
	e.U16(tag)
	e.F64s(sums)
	return e.Bytes()
}

// TestSATTrailerRejectsCorrupt: every malformed trailer must fail both
// Parse and Validate — wrong tag, wrong length, truncation, border
// violations, non-finite entries, and entries inconsistent with the
// counts. The last case is the critical one: a structurally perfect
// prefix table whose values disagree with the body would silently
// change answers between SAT-backed and rebuild readers.
func TestSATTrailerRejectsCorrupt(t *testing.T) {
	counts := []float64{1, 2, 3, 4}
	// The canonical trailer for counts on a 2x2 grid (what NewPrefix
	// computes): border zeros, then prefix sums.
	good := []float64{
		0, 0, 0,
		0, 1, 3,
		0, 4, 10,
	}
	if _, err := ParseUniformGridBinary(buildRawUGSAT(counts, good, 0)); err != nil {
		t.Fatalf("canonical trailer rejected: %v", err)
	}

	mutate := func(i int, v float64) []float64 {
		out := append([]float64(nil), good...)
		out[i] = v
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"wrong tag", buildRawUGSAT(counts, good, 0x5454)},
		{"short table", buildRawUGSAT(counts, good[:8], 0)},
		{"long table", buildRawUGSAT(counts, append(mutate(0, 0), 11), 0)},
		{"empty table", buildRawUGSAT(counts, nil, 0)},
		{"nonzero first row", buildRawUGSAT(counts, mutate(1, 5), 0)},
		{"nonzero first col", buildRawUGSAT(counts, mutate(3, 5), 0)},
		{"nan entry", buildRawUGSAT(counts, mutate(4, math.NaN()), 0)},
		{"inf entry", buildRawUGSAT(counts, mutate(8, math.Inf(1)), 0)},
		{"inconsistent interior", buildRawUGSAT(counts, mutate(4, 2), 0)},
		{"inconsistent corner", buildRawUGSAT(counts, mutate(8, 10.000000000000002), 0)},
		{"trailing bytes after trailer", append(buildRawUGSAT(counts, good, 0), 0)},
		{"truncated inside trailer", buildRawUGSAT(counts, good, 0)[:len(buildRawUGSAT(counts, good, 0))-4]},
	}
	for _, tc := range cases {
		if _, err := ParseUniformGridBinary(tc.data); err == nil {
			t.Errorf("%s: parse accepted", tc.name)
		}
		if _, err := ValidateUniformGridBinary(tc.data); err == nil {
			t.Errorf("%s: validate accepted", tc.name)
		}
		if _, err := ParseUniformGridBinaryView(tc.data); err == nil {
			t.Errorf("%s: view accepted", tc.name)
		}
	}
}

// TestSATTrailerOptional: a container ending right after its body (the
// pre-trailer format) is accepted by every decode path, and the view
// parser falls back to a materializing decode.
func TestSATTrailerOptional(t *testing.T) {
	data := buildRawUG([4]float64{0, 0, 1, 1}, 1, 2, 2, 2, []float64{1, 2, 3, 4})
	if _, err := ParseUniformGridBinary(data); err != nil {
		t.Fatalf("trailerless container rejected: %v", err)
	}
	info, err := ValidateUniformGridBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.SAT {
		t.Error("trailerless container validated with SAT=true")
	}
	view, err := ParseUniformGridBinaryView(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, isView := view.(*UGView); isView {
		t.Error("view decode of a trailerless container returned a zero-copy view")
	}
}

// TestValidateReportsSAT: Validate's Info.SAT mirrors trailer presence,
// which is what lets a sharded manifest report SATBacked for its whole
// mosaic.
func TestValidateReportsSAT(t *testing.T) {
	ugBin, _ := testUG(t).AppendBinary(nil)
	info, err := ValidateUniformGridBinary(ugBin)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SAT {
		t.Error("encoder-produced UG container validated with SAT=false")
	}
	agBin, _ := testAG(t).AppendBinary(nil)
	info, err = ValidateAdaptiveGridBinary(agBin)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SAT {
		t.Error("encoder-produced AG container validated with SAT=false")
	}
}

// TestAGSATTrailerRejectsInconsistent plants an AG trailer whose
// entries disagree with the per-cell table totals.
func TestAGSATTrailerRejectsInconsistent(t *testing.T) {
	mk := func(sat []float64) []byte {
		e := codec.NewEnc(nil, codec.KindAdaptive)
		for _, v := range [4]float64{0, 0, 1, 1} {
			e.F64(v)
		}
		e.F64(1)   // eps
		e.F64(0.5) // alpha
		e.U32(1)   // m1
		e.U32(1)   // cell 0: m2 = 1 -> 2x2 sums, total 5
		e.F64s([]float64{0, 0, 0, 5})
		e.U16(codec.SATTag)
		e.F64s(sat)
		return e.Bytes()
	}
	if _, err := ParseAdaptiveGridBinary(mk([]float64{0, 0, 0, 5})); err != nil {
		t.Fatalf("consistent AG trailer rejected: %v", err)
	}
	for name, sat := range map[string][]float64{
		"wrong total":    {0, 0, 0, 6},
		"nonzero border": {0, 5, 0, 5},
		"short":          {0, 0, 0},
	} {
		if _, err := ParseAdaptiveGridBinary(mk(sat)); err == nil {
			t.Errorf("%s: parse accepted", name)
		}
		if _, err := ValidateAdaptiveGridBinary(mk(sat)); err == nil {
			t.Errorf("%s: validate accepted", name)
		}
		if _, err := ParseAdaptiveGridBinaryView(mk(sat)); err == nil {
			t.Errorf("%s: view accepted", name)
		}
	}
}
