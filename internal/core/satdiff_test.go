package core

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"github.com/dpgrid/dpgrid/internal/codec"
	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// Differential query-equivalence suite for the summed-area fast path.
// Every container now carries a SAT trailer, which opens three ways to
// answer the same query: the SAT-backed materialized decode, the
// decode of the same container with the trailer stripped (the rebuild
// path old readers take), and the zero-copy view over the raw trailer
// bytes. Those three must agree BIT FOR BIT — the trailer is checked
// bitwise against the body at decode time, and RawPrefix performs
// Prefix's arithmetic on identical values in identical order. The
// cell-iteration baseline (QueryIter) sums the same released counts in
// a different order, so it is held to a magnitude-scaled tolerance
// instead.

// satRects is the rect battery: interior, edge-straddling, single-cell,
// sliver, zero-area, full-domain, beyond-domain, and corner cases.
func satRects(dom geom.Domain) []geom.Rect {
	w, h := dom.Width(), dom.Height()
	return []geom.Rect{
		dom.Rect, // full domain exactly
		geom.NewRect(dom.MinX-w, dom.MinY-h, dom.MaxX+w, dom.MaxY+h),                     // superset
		geom.NewRect(dom.MinX+0.25*w, dom.MinY+0.25*h, dom.MaxX-0.25*w, dom.MaxY-0.25*h), // interior
		geom.NewRect(dom.MinX-0.5*w, dom.MinY+0.1*h, dom.MinX+0.5*w, dom.MaxY+0.5*h),     // straddles left+top edges
		geom.NewRect(dom.MinX+0.41*w, dom.MinY+0.37*h, dom.MinX+0.44*w, dom.MinY+0.39*h), // sub-cell sliver
		geom.NewRect(dom.MinX+0.5*w, dom.MinY+0.5*h, dom.MinX+0.5*w, dom.MaxY),           // zero width
		geom.NewRect(dom.MinX, dom.MinY, dom.MinX, dom.MinY),                             // zero area at corner
		geom.NewRect(dom.MaxX+1, dom.MaxY+1, dom.MaxX+2, dom.MaxY+2),                     // fully outside
		geom.NewRect(dom.MinX, dom.MinY, dom.MinX+w/64, dom.MinY+h/64),                   // tiny corner cell
		geom.NewRect(dom.MinX+1e-9, dom.MinY+1e-9, dom.MaxX-1e-9, dom.MaxY-1e-9),         // almost full
	}
}

// stripSAT removes the summed-area trailer from a UG or AG container
// using the pinned wire layout (the layout test below keeps the offsets
// honest), yielding the container an older writer would have produced.
func stripSAT(t *testing.T, data []byte) []byte {
	t.Helper()
	satLen := satTrailerLen(t, data)
	stripped := bytes.Clone(data[: len(data)-satLen : len(data)-satLen])
	return stripped
}

// satTrailerLen computes the trailer's byte length from the container's
// own dimension fields: tag (2) + length prefix (8) + (mx+1)*(my+1)
// float64s.
func satTrailerLen(t *testing.T, data []byte) int {
	t.Helper()
	d, kind, err := codec.NewDec(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Domain(); err != nil {
		t.Fatal(err)
	}
	d.F64() // eps
	var mx, my int
	switch kind {
	case codec.KindUniform:
		d.Int32() // m
		mx, my = d.Int32(), d.Int32()
	case codec.KindAdaptive:
		d.F64() // alpha
		mx = d.Int32()
		my = mx
	default:
		t.Fatalf("satTrailerLen: kind %v", kind)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	return 2 + 8 + 8*(mx+1)*(my+1)
}

// satVariant is one way of answering queries about the same release.
type satVariant struct {
	name string
	syn  codec.Synopsis
}

// iterQuerier is the cell-iteration diagnostic surface.
type iterQuerier interface {
	QueryIter(r geom.Rect) float64
}

// ugVariants builds a UG of grid size m and returns the bit-identical
// query paths plus the freshly built synopsis (also bit-identical: the
// encoder serializes its exact tables) and the iteration baseline.
func ugVariants(t *testing.T, m int) (dom geom.Domain, exact []satVariant, iter iterQuerier, scale float64) {
	t.Helper()
	dom = geom.MustDomain(-10, 5, 30, 45)
	u, err := BuildUniformGrid(clusteredPoints(int64(900+m), 4000, dom), dom, 0.8, UGOptions{GridSize: m}, noise.NewSource(int64(900+m)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := u.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	satDec, err := ParseUniformGridBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !satDec.SATBacked() {
		t.Fatal("decode of a SAT-bearing container is not SAT-backed")
	}
	stripped, err := ParseUniformGridBinary(stripSAT(t, data))
	if err != nil {
		t.Fatalf("stripped container rejected: %v", err)
	}
	if stripped.SATBacked() {
		t.Fatal("decode of a stripped container claims SAT backing")
	}
	view, err := ParseUniformGridBinaryView(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := view.(*UGView); !ok {
		t.Fatalf("view decode returned %T, want *UGView", view)
	}
	for _, v := range u.noisy.Values() {
		scale += math.Abs(v)
	}
	return dom, []satVariant{
		{"built", u},
		{"sat-decode", satDec},
		{"stripped-decode", stripped},
		{"view", view},
	}, satDec, scale
}

// agVariants is ugVariants for AG at first-level size m1.
func agVariants(t *testing.T, m1 int) (dom geom.Domain, exact []satVariant, iter iterQuerier, scale float64) {
	t.Helper()
	dom = geom.MustDomain(0, 0, 20, 20)
	a, err := BuildAdaptiveGrid(clusteredPoints(int64(700+m1), 6000, dom), dom, 1.1,
		AGOptions{M1: m1, Alpha: 0.4, MaxM2: 6}, noise.NewSource(int64(700+m1)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	satDec, err := ParseAdaptiveGridBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !satDec.SATBacked() {
		t.Fatal("decode of a SAT-bearing container is not SAT-backed")
	}
	stripped, err := ParseAdaptiveGridBinary(stripSAT(t, data))
	if err != nil {
		t.Fatalf("stripped container rejected: %v", err)
	}
	if stripped.SATBacked() {
		t.Fatal("decode of a stripped container claims SAT backing")
	}
	view, err := ParseAdaptiveGridBinaryView(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := view.(*AGView); !ok {
		t.Fatalf("view decode returned %T, want *AGView", view)
	}
	for k := range a.cells {
		scale += math.Abs(a.cells[k].leaves.Total())
	}
	// The freshly built AG is NOT in the exact set: its level-1 table
	// holds the constrained-inference v' totals, which the file cannot
	// carry (see encodeSAT); decode-side paths agree bitwise among
	// themselves and with the iteration baseline to tolerance.
	return dom, []satVariant{
		{"sat-decode", satDec},
		{"stripped-decode", stripped},
		{"view", view},
	}, satDec, scale
}

// checkEquivalence runs the rect battery against every variant: decode
// variants bitwise-equal, iteration baseline within a magnitude-scaled
// tolerance.
func checkEquivalence(t *testing.T, dom geom.Domain, exact []satVariant, iter iterQuerier, scale float64) {
	t.Helper()
	tol := math.Max(scale, 1) * 1e-11
	for ri, r := range satRects(dom) {
		base := exact[0].syn.Query(r)
		for _, v := range exact[1:] {
			if got := v.syn.Query(r); math.Float64bits(got) != math.Float64bits(base) {
				t.Errorf("rect %d %v: %s answered %v, %s answered %v (want bitwise equal)",
					ri, r, exact[0].name, base, v.name, got)
			}
		}
		if it := iter.QueryIter(r); math.Abs(it-base) > tol {
			t.Errorf("rect %d %v: iteration baseline %g differs from prefix answer %g by %g (tol %g)",
				ri, r, it, base, it-base, tol)
		}
	}
}

// TestSATDifferentialUG: all UG query paths agree across grid sizes,
// including m=1 (single cell) and m=64 (many cells per query).
func TestSATDifferentialUG(t *testing.T) {
	for _, m := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			dom, exact, iter, scale := ugVariants(t, m)
			checkEquivalence(t, dom, exact, iter, scale)
		})
	}
}

// TestSATDifferentialAG: all AG decode paths agree across first-level
// sizes.
func TestSATDifferentialAG(t *testing.T) {
	for _, m1 := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("m1=%d", m1), func(t *testing.T) {
			dom, exact, iter, scale := agVariants(t, m1)
			checkEquivalence(t, dom, exact, iter, scale)
		})
	}
}

// TestSATDifferentialConcurrent re-runs the battery from 1, 2, and
// GOMAXPROCS workers simultaneously against shared synopses — under
// -race this proves the SAT-backed and zero-copy paths are free of
// hidden mutable state.
func TestSATDifferentialConcurrent(t *testing.T) {
	domUG, exactUG, iterUG, scaleUG := ugVariants(t, 7)
	domAG, exactAG, iterAG, scaleAG := agVariants(t, 7)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					checkEquivalence(t, domUG, exactUG, iterUG, scaleUG)
					checkEquivalence(t, domAG, exactAG, iterAG, scaleAG)
				}()
			}
			wg.Wait()
		})
	}
}

// TestSATStrippedReencodeGainsTrailer pins forward compatibility: a
// container stripped of its trailer decodes, and re-encoding that
// decoded synopsis reproduces the original trailer bit for bit (the
// trailer is a pure function of the body).
func TestSATStrippedReencodeGainsTrailer(t *testing.T) {
	u := testUG(t)
	data, err := u.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := ParseUniformGridBinary(stripSAT(t, data))
	if err != nil {
		t.Fatal(err)
	}
	again, err := stripped.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("re-encoding a stripped-decode UG did not reproduce the SAT-bearing container")
	}

	a := testAG(t)
	agData, err := a.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	agStripped, err := ParseAdaptiveGridBinary(stripSAT(t, agData))
	if err != nil {
		t.Fatal(err)
	}
	agAgain, err := agStripped.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(agAgain, agData) {
		t.Fatal("re-encoding a stripped-decode AG did not reproduce the SAT-bearing container")
	}
}

// TestSATViewReencodeVerbatim: the zero-copy views re-encode by
// returning their retained container bytes unchanged.
func TestSATViewReencodeVerbatim(t *testing.T) {
	for _, tc := range []struct {
		name  string
		data  func(t *testing.T) []byte
		parse func([]byte) (codec.Synopsis, error)
	}{
		{"ug", func(t *testing.T) []byte { d, err := testUG(t).AppendBinary(nil); mustNoErr(t, err); return d }, ParseUniformGridBinaryView},
		{"ag", func(t *testing.T) []byte { d, err := testAG(t).AppendBinary(nil); mustNoErr(t, err); return d }, ParseAdaptiveGridBinaryView},
	} {
		data := tc.data(t)
		view, err := tc.parse(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ba, ok := view.(interface{ AppendBinary([]byte) ([]byte, error) })
		if !ok {
			t.Fatalf("%s: view lacks AppendBinary", tc.name)
		}
		again, err := ba.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("%s: view re-encode changed bytes", tc.name)
		}
	}
}

// TestSATViewMetadata: views report the same envelope metadata as the
// materialized decode.
func TestSATViewMetadata(t *testing.T) {
	u := testUG(t)
	data, err := u.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ParseUniformGridBinaryView(data)
	if err != nil {
		t.Fatal(err)
	}
	uv := view.(*UGView)
	if uv.Epsilon() != u.Epsilon() || uv.Domain() != u.Domain() || uv.GridSize() != u.GridSize() {
		t.Errorf("UG view metadata: eps %g dom %v m %d", uv.Epsilon(), uv.Domain(), uv.GridSize())
	}
	mx, my := u.Dims()
	if vmx, vmy := uv.Dims(); vmx != mx || vmy != my {
		t.Errorf("UG view dims %dx%d, want %dx%d", vmx, vmy, mx, my)
	}
	if got, want := uv.TotalEstimate(), u.TotalEstimate(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("UG view TotalEstimate %v, want %v", got, want)
	}

	a := testAG(t)
	agData, err := a.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	agView, err := ParseAdaptiveGridBinaryView(agData)
	if err != nil {
		t.Fatal(err)
	}
	av := agView.(*AGView)
	if av.Epsilon() != a.Epsilon() || av.Domain() != a.Domain() || av.M1() != a.M1() || av.Alpha() != a.Alpha() {
		t.Errorf("AG view metadata: eps %g dom %v m1 %d alpha %g", av.Epsilon(), av.Domain(), av.M1(), av.Alpha())
	}
	agDec, err := ParseAdaptiveGridBinary(agData)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := av.TotalEstimate(), agDec.TotalEstimate(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("AG view TotalEstimate %v, want decoded %v", got, want)
	}
}

// TestSATViewBatch: QueryBatch through the views matches per-rect Query
// bitwise in input order.
func TestSATViewBatch(t *testing.T) {
	dom, exact, _, _ := ugVariants(t, 7)
	view := exact[len(exact)-1].syn.(*UGView)
	rects := satRects(dom)
	got := view.QueryBatch(rects)
	for i, r := range rects {
		if want := view.Query(r); math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Errorf("rect %d: batch %v, single %v", i, got[i], want)
		}
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
