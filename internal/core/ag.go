package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/grid"
	"github.com/dpgrid/dpgrid/internal/noise"
	"github.com/dpgrid/dpgrid/internal/pool"
)

// AGOptions configures BuildAdaptiveGrid. The zero value reproduces the
// paper's defaults: alpha = 0.5, c = 10, c2 = c/2, m1 from the
// max(10, sqrt(N*eps/c)/4) rule.
type AGOptions struct {
	// M1 fixes the first-level grid size (the paper's A_{m1,c2}
	// notation). When 0, the m1 rule of section IV-B chooses it.
	M1 int
	// Alpha is the fraction of eps spent on first-level counts; 0 means
	// DefaultAlpha. Must lie in (0, 1).
	Alpha float64
	// C is the Guideline 1 constant used by the m1 rule; 0 means DefaultC.
	C float64
	// C2 is the Guideline 2 constant; 0 means C/2.
	C2 float64
	// MaxM2 caps each cell's second-level grid size; 0 means DefaultMaxM2.
	MaxM2 int
	// NBudgetFrac, when positive, spends that fraction of eps on a noisy
	// estimate of N for the m1 rule (see UGOptions.NBudgetFrac).
	NBudgetFrac float64
	// Workers bounds the goroutines used across the whole build: the
	// ingestion scans (counting, the fused histogram-and-index pass,
	// and the leaf pass) and the per-cell noise/inference pass. 0 means
	// one worker per CPU; 1 forces the sequential path. Parallel
	// construction requires a noise.Forkable source (noise.NewSource
	// qualifies): each cell draws noise from the sub-stream keyed by
	// its index, and the scan results are exact integer histograms that
	// merge identically under any stream partition — so for a given
	// seed the released synopsis is bit-identical for every Workers
	// value. With a non-Forkable source, Workers > 1 is an error and
	// the zero value falls back to the single-stream sequential path.
	Workers int
	// IndexLimit caps how many in-domain points the fused single-pass
	// build may buffer in its level-1-binned point index (the structure
	// that lets the leaf pass iterate cache-local bins instead of
	// re-scanning the source). 0 picks automatically: up to
	// DefaultAGIndexPoints for sources whose re-scan costs real work (a
	// CSV file re-parses, a spool re-reads disk), and no index for
	// in-memory slices, whose re-scan is a free pass over RAM that the
	// index could only lose to. A negative value disables the index
	// unconditionally (pure streaming build, bounded memory); a
	// positive value forces that cap for any source. Every setting
	// releases the bit-identical synopsis — the knob trades memory for
	// scan cost only.
	IndexLimit int
	// DisableInference skips the constrained-inference step and answers
	// from raw second-level counts only. It exists for ablation studies
	// (quantifying how much CI contributes to AG); it wastes the level-1
	// budget and should not be used outside experiments.
	DisableInference bool
}

// AdaptiveGrid is the AG synopsis (section IV-B): a coarse m1 x m1 first
// level whose cells are each re-partitioned into an adaptively sized
// m2 x m2 second level, with constrained inference reconciling the two
// levels. Queries are answered from the post-inference leaf counts, whose
// consistency with the first level makes the greedy two-level answering
// strategy equal to a pure leaf sum.
type AdaptiveGrid struct {
	dom   geom.Domain
	eps   float64
	alpha float64
	m1    int

	cells     []agCell     // row-major m1*m1
	level1    *grid.Prefix // prefix sums over post-inference cell totals
	leafPop   int          // total number of leaf cells (diagnostics)
	maxM2     int          // largest m2 chosen (diagnostics)
	epsLevel  [2]float64   // actual budget split (diagnostics)
	satBacked bool         // level1 adopted from a stored SAT section on decode
}

// agCell holds one first-level cell's second-level synopsis.
type agCell struct {
	rect   geom.Rect
	m2     int
	total  float64      // post-inference cell count v'
	leaves *grid.Prefix // post-inference leaf counts over rect
}

// BuildAdaptiveGrid constructs an AG synopsis of points over dom under
// eps-differential privacy.
func BuildAdaptiveGrid(points []geom.Point, dom geom.Domain, eps float64, opts AGOptions, src noise.Source) (*AdaptiveGrid, error) {
	return BuildAdaptiveGridSeq(geom.SlicePoints(points), dom, eps, opts, src)
}

// BuildAdaptiveGridSeq is BuildAdaptiveGrid over a streaming point
// source, for datasets that do not fit in memory (the paper's two-pass
// construction; choosing m1 from the data adds one extra counting scan
// when M1 is 0).
func BuildAdaptiveGridSeq(seq geom.PointSeq, dom geom.Domain, eps float64, opts AGOptions, src noise.Source) (*AdaptiveGrid, error) {
	if src == nil {
		return nil, errors.New("core: nil noise source")
	}
	budget, err := noise.NewBudget(eps)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("core: alpha must be in (0,1), got %g", alpha)
	}
	c := opts.C
	if c == 0 {
		c = DefaultC
	}
	c2 := opts.C2
	if c2 == 0 {
		c2 = c / 2
	}
	if c <= 0 || c2 <= 0 {
		return nil, fmt.Errorf("core: constants must be positive (c=%g, c2=%g)", c, c2)
	}
	maxM2 := opts.MaxM2
	if maxM2 == 0 {
		maxM2 = DefaultMaxM2
	}
	if maxM2 < 1 {
		return nil, fmt.Errorf("core: MaxM2 must be positive, got %d", maxM2)
	}
	if opts.NBudgetFrac < 0 || opts.NBudgetFrac >= 1 {
		return nil, fmt.Errorf("core: NBudgetFrac must be in [0, 1), got %g", opts.NBudgetFrac)
	}

	// Resolve the shared parallelism level up front: the ingestion
	// scans and the per-cell noise pass use the same Workers knob, and
	// Workers > 1 needs a Forkable source for the noise (the scans
	// themselves never touch src).
	forkable, canFork := src.(noise.Forkable)
	workers := opts.Workers
	if !canFork {
		if workers > 1 {
			return nil, errors.New("core: AGOptions.Workers > 1 requires a noise.Forkable source (noise.NewSource provides one)")
		}
		workers = 1
	}
	indexLimit := opts.IndexLimit
	if indexLimit == 0 {
		if _, inMemory := seq.(geom.SlicePoints); inMemory {
			indexLimit = -1
		} else {
			indexLimit = DefaultAGIndexPoints
		}
	}

	remaining := eps
	histSeq := seq
	m1 := opts.M1
	if m1 == 0 {
		var nInt int64
		if indexLimit > 0 {
			// Fuse the counting pass with point gathering: when the
			// dataset fits the index budget, the m1-rule scan already
			// collected every in-domain point, and the histogram pass
			// below runs over memory instead of a second source scan.
			pts, n, err := collectInDomain(seq, dom, workers, indexLimit)
			if err != nil {
				return nil, err
			}
			nInt = n
			if pts != nil {
				histSeq = geom.SlicePoints(pts)
			} else {
				// The dataset already exceeded the index budget; do not
				// let the histogram pass buffer it all over again.
				indexLimit = -1
			}
		} else {
			n, err := geom.CountInDomain(seq, dom, workers)
			if err != nil {
				return nil, fmt.Errorf("core: counting points: %w", err)
			}
			nInt = n
		}
		n := float64(nInt)
		if opts.NBudgetFrac > 0 {
			nEps, err := budget.SpendFraction(opts.NBudgetFrac)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			nMech, err := noise.NewMechanism(nEps, 1, src)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			n = math.Max(0, nMech.Perturb(n))
			remaining = budget.Remaining()
		}
		m1 = SuggestedM1(n, remaining, c)
	} else if m1 < 0 {
		return nil, fmt.Errorf("core: m1 must be positive, got %d", m1)
	}

	eps1 := alpha * remaining
	eps2 := (1 - alpha) * remaining

	// Fused first pass: one scan produces the exact first-level
	// histogram and (within IndexLimit) the level-1-binned point index
	// the leaf pass reads in place of a second scan of the source.
	level1, pindex, err := histogramIndexed(histSeq, dom, m1, workers, indexLimit)
	if err != nil {
		return nil, err
	}
	if err := budget.Spend(eps1); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mech1, err := noise.NewMechanism(eps1, 1, src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	noisy1 := level1.Clone()
	mech1.PerturbAll(noisy1.Values())

	// Choose each cell's m2 from its *noisy* count (Guideline 2), so the
	// choice itself consumes no extra budget.
	m2s := make([]int, m1*m1)
	maxChosen := 1
	leafTotal := 0
	for i, v := range noisy1.Values() {
		m2 := SuggestedM2(v, eps2, c2, maxM2)
		m2s[i] = m2
		leafTotal += m2 * m2
		if m2 > maxChosen {
			maxChosen = m2
		}
	}

	// Leaf pass: exact leaf histograms in one flat buffer with per-cell
	// CSR offsets (cache-local, and partial buffers merge in one sweep).
	// With a point index the pass is cell-parallel over in-memory bins —
	// no second scan of the source; without one (IndexLimit disabled or
	// exceeded) the streaming re-scan runs, the paper's "two passes over
	// the dataset". Then noise with eps2.
	leafStarts := make([]int, m1*m1+1)
	for i, m2 := range m2s {
		leafStarts[i+1] = leafStarts[i] + m2*m2
	}
	leafFlat := make([]float64, leafTotal)
	leafOf := func(k int) []float64 { return leafFlat[leafStarts[k]:leafStarts[k+1]] }
	if pindex != nil {
		leafFill(pindex, dom, m1, m2s, leafStarts, leafFlat, workers)
	} else if err := leafRescan(histSeq, dom, m1, m2s, leafStarts, leafFlat, workers); err != nil {
		return nil, err
	}
	if err := budget.Spend(eps2); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Second-level noise: each first-level cell is independent, so this
	// pass is cell-parallel (the paper's construction builds every cell's
	// second-level grid in isolation). With a Forkable source, cell k
	// draws from the sub-stream keyed by k — deterministic regardless of
	// scheduling, so every Workers value releases bit-identical noise.
	// A plain Source cannot be shared across goroutines (see
	// noise.Source's concurrency contract); it keeps the legacy
	// single-stream sequential draw order.
	var nonce uint64
	if canFork {
		// Per-build offset for the fork keys: drawn from the advancing
		// parent stream so that reusing one Source across builds yields
		// fresh noise each time (see noise.ForkNonce), while a fresh
		// Source with the same seed still reproduces the build exactly.
		nonce = noise.ForkNonce(src)
	} else {
		mech2, err := noise.NewMechanism(eps2, 1, src)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for k := 0; k < m1*m1; k++ {
			mech2.PerturbAll(leafOf(k))
		}
	}

	// Constrained inference per first-level cell (section IV-B):
	//   v'  = (a^2 m2^2 * v + (1-a)^2 * sum(u)) / ((1-a)^2 + a^2 m2^2)
	//   u' += (v' - sum(u)) / m2^2
	// (the paper's u' equation omits the 1/m2^2; equal distribution over
	// the leaves is required for sum(u') = v' — see DESIGN.md).
	ag := &AdaptiveGrid{
		dom:     dom,
		eps:     eps,
		alpha:   alpha,
		m1:      m1,
		cells:   make([]agCell, m1*m1),
		leafPop: leafTotal,
		maxM2:   maxChosen,
	}
	ag.epsLevel = [2]float64{eps1, eps2}
	totals, err := grid.New(dom, m1, m1)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a2 := alpha * alpha
	b2 := (1 - alpha) * (1 - alpha)
	cellErrs := make([]error, m1*m1)
	pool.For(m1*m1, workers, func(k int) {
		ix, iy := k%m1, k/m1
		m2 := m2s[k]
		leaves := leafOf(k)
		if canFork {
			mech2, err := noise.NewMechanism(eps2, 1, forkable.Fork(nonce+uint64(k)))
			if err != nil {
				cellErrs[k] = err
				return
			}
			mech2.PerturbAll(leaves)
		}
		v := noisy1.At(ix, iy)
		var sumU float64
		for _, u := range leaves {
			sumU += u
		}
		m2sq := float64(m2 * m2)
		denom := b2 + a2*m2sq
		vPrime := (a2*m2sq*v + b2*sumU) / denom
		diff := (vPrime - sumU) / m2sq
		if opts.DisableInference {
			vPrime = sumU
			diff = 0
		}
		cellRect := dom.CellRect(ix, iy, m1, m1)
		cellDom := geom.Domain{Rect: cellRect}
		leafGrid, err := grid.New(cellDom, m2, m2)
		if err != nil {
			cellErrs[k] = err
			return
		}
		for i, u := range leaves {
			leafGrid.Values()[i] = u + diff
		}
		ag.cells[k] = agCell{
			rect:   cellRect,
			m2:     m2,
			total:  vPrime,
			leaves: grid.NewPrefix(leafGrid),
		}
		totals.Set(ix, iy, vPrime)
	})
	for _, err := range cellErrs {
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	ag.level1 = grid.NewPrefix(totals)
	return ag, nil
}

// Query estimates the number of data points in r. First-level cells fully
// inside r contribute their reconciled totals through a prefix-sum block;
// boundary cells are answered from their second-level leaves with the
// uniformity assumption.
func (a *AdaptiveGrid) Query(r geom.Rect) float64 {
	clipped, ok := a.dom.Clip(r)
	if !ok {
		return 0
	}
	m1 := a.m1
	w, h := a.dom.CellSize(m1, m1)
	bx0 := clampInt(int(math.Floor((clipped.MinX-a.dom.MinX)/w)), 0, m1-1)
	by0 := clampInt(int(math.Floor((clipped.MinY-a.dom.MinY)/h)), 0, m1-1)
	// The high edges are half-open: a rect whose MaxX lands exactly on a
	// cell boundary has zero overlap with the next column, so Ceil-1
	// (clamped against the low edge for zero-extent rects) excludes it.
	// Floor would include a column contributing exactly 0, which costs
	// boundary work and blocks the aligned fast path below.
	bx1 := clampInt(int(math.Ceil((clipped.MaxX-a.dom.MinX)/w))-1, bx0, m1-1)
	by1 := clampInt(int(math.Ceil((clipped.MaxY-a.dom.MinY)/h))-1, by0, m1-1)

	// Aligned fast path: a rect containing every touched first-level
	// cell outright is one O(1) block sum off the level-1 table — no
	// per-boundary-cell work. Full-domain queries and any cell-aligned
	// rect take this branch.
	lo, hi := &a.cells[by0*m1+bx0], &a.cells[by1*m1+bx1]
	if clipped.ContainsRect(geom.NewRect(lo.rect.MinX, lo.rect.MinY, hi.rect.MaxX, hi.rect.MaxY)) {
		return a.level1.BlockSum(bx0, by0, bx1+1, by1+1)
	}

	// Interior first-level cells (strictly inside the touched range) are
	// fully covered: O(1) via the level-1 prefix table.
	var total float64
	if bx0+1 < bx1 && by0+1 < by1 {
		total += a.level1.BlockSum(bx0+1, by0+1, bx1, by1)
	}

	cellQuery := func(bx, by int) {
		cell := &a.cells[by*m1+bx]
		if clipped.ContainsRect(cell.rect) {
			total += cell.total
			return
		}
		total += cell.leaves.Query(clipped)
	}
	for by := by0; by <= by1; by++ {
		cellQuery(bx0, by)
		if bx1 != bx0 {
			cellQuery(bx1, by)
		}
	}
	for bx := bx0 + 1; bx < bx1; bx++ {
		cellQuery(bx, by0)
		if by1 != by0 {
			cellQuery(bx, by1)
		}
	}
	return total
}

// QueryBatch answers every rectangle in rs, fanned out across one worker
// per CPU, and returns the estimates in input order. Queries are pure
// post-processing over immutable prefix tables, so answering them
// concurrently is safe and spends no privacy budget.
func (a *AdaptiveGrid) QueryBatch(rs []geom.Rect) []float64 {
	return pool.Map(rs, 0, a.Query)
}

// QueryIter answers r by iterating every touched leaf cell directly —
// the O(touched leaves) baseline the two-level prefix strategy
// replaces, kept as the differential-test and benchmark reference. Leaf
// values are read back out of the per-cell prefix tables one at a time,
// so the answer reflects the same released counts as Query without any
// block-sum shortcuts.
func (a *AdaptiveGrid) QueryIter(r geom.Rect) float64 {
	clipped, ok := a.dom.Clip(r)
	if !ok {
		return 0
	}
	m1 := a.m1
	w, h := a.dom.CellSize(m1, m1)
	bx0 := clampInt(int(math.Floor((clipped.MinX-a.dom.MinX)/w)), 0, m1-1)
	bx1 := clampInt(int(math.Floor((clipped.MaxX-a.dom.MinX)/w)), 0, m1-1)
	by0 := clampInt(int(math.Floor((clipped.MinY-a.dom.MinY)/h)), 0, m1-1)
	by1 := clampInt(int(math.Floor((clipped.MaxY-a.dom.MinY)/h)), 0, m1-1)
	var total float64
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			cell := &a.cells[by*m1+bx]
			cellDom := geom.Domain{Rect: cell.rect}
			for ly := 0; ly < cell.m2; ly++ {
				for lx := 0; lx < cell.m2; lx++ {
					f := cellDom.CellRect(lx, ly, cell.m2, cell.m2).OverlapFraction(clipped)
					if f > 0 {
						total += f * cell.leaves.BlockSum(lx, ly, lx+1, ly+1)
					}
				}
			}
		}
	}
	return total
}

// SATBacked reports whether the synopsis's level-1 prefix table was
// adopted from a stored summed-area section rather than rebuilt — true
// exactly for synopses decoded from containers carrying the SAT
// trailer.
func (a *AdaptiveGrid) SATBacked() bool { return a.satBacked }

// M1 returns the first-level grid size.
func (a *AdaptiveGrid) M1() int { return a.m1 }

// Alpha returns the budget split parameter.
func (a *AdaptiveGrid) Alpha() float64 { return a.alpha }

// Epsilon returns the total privacy budget consumed.
func (a *AdaptiveGrid) Epsilon() float64 { return a.eps }

// Domain returns the synopsis domain.
func (a *AdaptiveGrid) Domain() geom.Domain { return a.dom }

// TotalEstimate returns the noisy estimate of the dataset size.
func (a *AdaptiveGrid) TotalEstimate() float64 { return a.level1.Total() }

// LeafCells returns the total number of second-level cells in the synopsis.
func (a *AdaptiveGrid) LeafCells() int { return a.leafPop }

// MaxM2 returns the largest second-level grid size chosen by Guideline 2.
func (a *AdaptiveGrid) MaxM2() int { return a.maxM2 }

// CellM2 returns the second-level grid size chosen for first-level cell
// (ix, iy).
func (a *AdaptiveGrid) CellM2(ix, iy int) int {
	if ix < 0 || ix >= a.m1 || iy < 0 || iy >= a.m1 {
		return 0
	}
	return a.cells[iy*a.m1+ix].m2
}

// CellTotal returns the post-inference count of first-level cell (ix, iy).
func (a *AdaptiveGrid) CellTotal(ix, iy int) float64 {
	if ix < 0 || ix >= a.m1 || iy < 0 || iy >= a.m1 {
		return 0
	}
	return a.cells[iy*a.m1+ix].total
}

// BudgetSplit returns the epsilon spent on the two levels.
func (a *AdaptiveGrid) BudgetSplit() (level1, level2 float64) {
	return a.epsLevel[0], a.epsLevel[1]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
