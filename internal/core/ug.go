package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/grid"
	"github.com/dpgrid/dpgrid/internal/noise"
	"github.com/dpgrid/dpgrid/internal/pool"
)

// UGOptions configures BuildUniformGrid. The zero value reproduces the
// paper's defaults: Guideline 1 grid size with c = 10 and the true point
// count used for the size formula.
type UGOptions struct {
	// GridSize fixes the grid size m explicitly (the paper's U_m
	// notation). When 0, Guideline 1 chooses it.
	GridSize int
	// C is the Guideline 1 constant; 0 means DefaultC.
	C float64
	// NBudgetFrac is the fraction of eps spent on a noisy estimate of N
	// for the Guideline 1 formula. The paper notes "obtaining a noisy
	// estimate of N using a very small portion of the total privacy
	// budget suffices". 0 uses the true N for the formula (matching the
	// paper's experiments) and spends the whole budget on cell counts;
	// set e.g. 0.02 for an end-to-end differentially private pipeline.
	NBudgetFrac float64
	// AspectAware distributes the cell budget so that cells are square
	// in data units (mx/my ~ domain width/height with mx*my ~ m^2),
	// instead of the paper's square m x m grid. An extension beyond the
	// paper; eval.AblationAspect measures its effect on wide domains
	// such as checkin's 360 x 150.
	AspectAware bool
	// Workers bounds the goroutines used by the ingestion scans (the
	// optional counting pass and the histogram pass). 0 means one
	// worker per CPU; 1 forces the sequential scan. Every value
	// releases the bit-identical synopsis: cell counts are sums of
	// exact integers, so partial histograms merge to the same totals
	// regardless of how the stream was split, and the noise draw order
	// from src never changes. Unlike AGOptions.Workers this needs no
	// Forkable source — UG's noise is applied after the scans, on the
	// calling goroutine.
	Workers int
}

// UniformGrid is the UG synopsis: an equi-width grid of Laplace-noised
// counts (section IV-A; m x m in the paper, optionally mx x my with
// square data-unit cells under UGOptions.AspectAware). Queries are
// answered with the uniformity assumption for partially covered cells.
type UniformGrid struct {
	dom       geom.Domain
	eps       float64
	m         int // nominal Guideline 1 size
	mx, my    int // actual grid dimensions (mx = my = m unless aspect-aware)
	noisy     *grid.Counts
	prefix    *grid.Prefix
	satBacked bool // prefix adopted from a stored SAT section on decode
}

// BuildUniformGrid constructs a UG synopsis of points over dom under
// eps-differential privacy. Points outside dom are ignored. src supplies
// the noise randomness.
func BuildUniformGrid(points []geom.Point, dom geom.Domain, eps float64, opts UGOptions, src noise.Source) (*UniformGrid, error) {
	return BuildUniformGridSeq(geom.SlicePoints(points), dom, eps, opts, src)
}

// BuildUniformGridSeq is BuildUniformGrid over a streaming point source,
// for datasets that do not fit in memory (the paper's single-scan
// construction; choosing the grid size from the data adds one extra
// counting scan when GridSize is 0).
func BuildUniformGridSeq(seq geom.PointSeq, dom geom.Domain, eps float64, opts UGOptions, src noise.Source) (*UniformGrid, error) {
	if src == nil {
		return nil, errors.New("core: nil noise source")
	}
	budget, err := noise.NewBudget(eps)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.NBudgetFrac < 0 || opts.NBudgetFrac >= 1 {
		return nil, fmt.Errorf("core: NBudgetFrac must be in [0, 1), got %g", opts.NBudgetFrac)
	}
	c := opts.C
	if c == 0 {
		c = DefaultC
	}
	if c < 0 {
		return nil, fmt.Errorf("core: c must be positive, got %g", c)
	}

	m := opts.GridSize
	cellEps := eps
	if m == 0 {
		nInt, err := geom.CountInDomain(seq, dom, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: counting points: %w", err)
		}
		n := float64(nInt)
		if opts.NBudgetFrac > 0 {
			nEps, err := budget.SpendFraction(opts.NBudgetFrac)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			nMech, err := noise.NewMechanism(nEps, 1, src)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			n = math.Max(0, nMech.Perturb(n))
			cellEps = budget.Remaining()
		}
		m = SuggestedUGSize(n, cellEps, c)
	} else if m < 0 {
		return nil, fmt.Errorf("core: grid size must be positive, got %d", m)
	}

	mx, my := m, m
	if opts.AspectAware {
		mx, my = aspectDims(m, dom)
	}

	if err := budget.Spend(cellEps); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	counts, err := grid.FromSeqParallel(dom, mx, my, seq, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mech, err := noise.NewMechanism(cellEps, 1, src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mech.PerturbAll(counts.Values())

	return &UniformGrid{
		dom:    dom,
		eps:    eps,
		m:      m,
		mx:     mx,
		my:     my,
		noisy:  counts,
		prefix: grid.NewPrefix(counts),
	}, nil
}

// aspectDims splits a total cell budget of m^2 into mx x my with cells
// square in data units: mx/my ~ W/H, mx*my ~ m^2.
func aspectDims(m int, dom geom.Domain) (mx, my int) {
	ratio := math.Sqrt(dom.Width() / dom.Height())
	mx = int(math.Round(float64(m) * ratio))
	if mx < 1 {
		mx = 1
	}
	my = int(math.Round(float64(m*m) / float64(mx)))
	if my < 1 {
		my = 1
	}
	return mx, my
}

// Query estimates the number of data points in r.
func (u *UniformGrid) Query(r geom.Rect) float64 { return u.prefix.Query(r) }

// QueryBatch answers every rectangle in rs, fanned out across one worker
// per CPU, and returns the estimates in input order. Queries are pure
// post-processing over an immutable prefix table, so answering them
// concurrently is safe and spends no privacy budget.
func (u *UniformGrid) QueryBatch(rs []geom.Rect) []float64 {
	return pool.Map(rs, 0, u.Query)
}

// QueryIter answers r by iterating the covered cells directly — the
// O(covered cells) baseline the prefix path replaces. It exists as the
// differential-test and benchmark reference: the SAT-backed O(1) path
// must agree with it to within float-summation reordering.
func (u *UniformGrid) QueryIter(r geom.Rect) float64 { return u.noisy.QueryIter(r) }

// SATBacked reports whether the synopsis's prefix table was adopted
// from a stored summed-area section rather than rebuilt from counts —
// true exactly for synopses decoded from containers carrying the SAT
// trailer.
func (u *UniformGrid) SATBacked() bool { return u.satBacked }

// GridSize returns the nominal grid size m (Guideline 1's value).
func (u *UniformGrid) GridSize() int { return u.m }

// Dims returns the actual grid dimensions, which differ from
// (GridSize, GridSize) only under UGOptions.AspectAware.
func (u *UniformGrid) Dims() (mx, my int) { return u.mx, u.my }

// Epsilon returns the total privacy budget the synopsis consumed.
func (u *UniformGrid) Epsilon() float64 { return u.eps }

// Domain returns the synopsis domain.
func (u *UniformGrid) Domain() geom.Domain { return u.dom }

// TotalEstimate returns the noisy estimate of the dataset size (the sum of
// all noisy cell counts).
func (u *UniformGrid) TotalEstimate() float64 { return u.prefix.Total() }

// Counts exposes the noisy cell counts (the released synopsis). The
// returned grid is the synopsis itself, not a copy; treat it as read-only.
func (u *UniformGrid) Counts() *grid.Counts { return u.noisy }
