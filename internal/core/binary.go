package core

import (
	"fmt"

	"github.com/dpgrid/dpgrid/internal/codec"
	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/grid"
)

// Binary (dpgridv2) serialization of UG and AG synopses — the compact
// companion to the JSON format in serialize.go. Both formats carry the
// same release (cell boundaries and noisy counts), so the choice is
// pure engineering: binary files are a fraction of the size and decode
// by copying instead of parsing decimal text.
//
// Layouts (after the codec container header; all little endian):
//
//	UG:  domain (4 f64) | epsilon (f64) | m, mx, my (u32) |
//	     counts (length-prefixed f64 section, mx*my row-major) |
//	     SAT trailer (optional; see below)
//	AG:  domain (4 f64) | epsilon (f64) | alpha (f64) | m1 (u32) |
//	     m1*m1 cells, each: m2 (u32) |
//	     prefix sums (length-prefixed f64 section, (m2+1)^2 row-major) |
//	     SAT trailer (optional; see below)
//
// AG cells persist the prefix-sum table rather than the leaf counts:
// the table is the synopsis's exact in-memory query structure, so
// encode/decode never recompute sums — round trips are bit-identical
// and decoding is an allocation plus a copy, with no O(cells) prefix
// rebuild. (Deriving leaves from sums and re-summing on load, as the
// JSON format does, loses bit-identity to float rounding.)
//
// The SAT trailer (codec.SATTag + a length-prefixed f64 section) is the
// top-level summed-area table: for UG the (mx+1)*(my+1) prefix sums of
// the counts section, for AG the (m1+1)^2 prefix sums of the per-cell
// table totals (each cell table's last entry — NOT the in-memory
// level-1 totals, which hold the constrained-inference v' values a
// reader cannot re-derive from the file). Decoders verify the trailer
// bit-for-bit against the body (codec.CheckSATRaw), so a SAT-backed
// decode answers identically to a reader that ignores the section and
// rebuilds, and re-encoding reproduces the container byte-for-byte.
// Files written before the trailer existed decode unchanged; the
// zero-copy view parsers below serve queries straight from the mapped
// trailer bytes.

// BinaryInfo summarizes a binary payload's envelope-level fields. It is
// what a manifest validator needs to cross-check an embedded shard
// without materializing it. It is an alias of codec.Info so the
// registry's Validate hooks and this package's validators interchange
// freely.
type BinaryInfo = codec.Info

// init announces the UG and AG codecs to the kind registry; every
// serialization layer (container sniffing, sharded-manifest embedding,
// dpserve loading) dispatches through it.
func init() {
	codec.Register(codec.Registration{
		Kind:       codec.KindUniform,
		Name:       "uniform-grid",
		JSONFormat: FormatUG,
		DecodeBinary: func(data []byte) (codec.Synopsis, error) {
			return ParseUniformGridBinary(data)
		},
		DecodeJSON: func(data []byte) (codec.Synopsis, error) {
			return ParseUniformGrid(data)
		},
		DecodeBinaryView: ParseUniformGridBinaryView,
		Validate:         ValidateUniformGridBinary,
	})
	codec.Register(codec.Registration{
		Kind:       codec.KindAdaptive,
		Name:       "adaptive-grid",
		JSONFormat: FormatAG,
		DecodeBinary: func(data []byte) (codec.Synopsis, error) {
			return ParseAdaptiveGridBinary(data)
		},
		DecodeJSON: func(data []byte) (codec.Synopsis, error) {
			return ParseAdaptiveGrid(data)
		},
		DecodeBinaryView: ParseAdaptiveGridBinaryView,
		Validate:         ValidateAdaptiveGridBinary,
	})
}

// ContainerKind reports the synopsis's container kind.
func (u *UniformGrid) ContainerKind() codec.Kind { return codec.KindUniform }

// ContainerKind reports the synopsis's container kind.
func (a *AdaptiveGrid) ContainerKind() codec.Kind { return codec.KindAdaptive }

// AppendBinary appends the synopsis's dpgridv2 container to dst and
// returns the extended slice.
func (u *UniformGrid) AppendBinary(dst []byte) ([]byte, error) {
	e := codec.NewEnc(dst, codec.KindUniform)
	EncodeDomain(e, u.dom)
	e.F64(u.eps)
	e.U32(uint32(u.m))
	e.U32(uint32(u.mx))
	e.U32(uint32(u.my))
	e.F64s(u.noisy.Values())
	// The stored SAT is the in-memory prefix table, which NewPrefix
	// built from the very counts written above — so the decoder's
	// bitwise consistency check always passes on our own output.
	e.SATSection(u.prefix.Sums())
	return e.Bytes(), nil
}

// AppendBinary appends the synopsis's dpgridv2 container to dst and
// returns the extended slice.
func (a *AdaptiveGrid) AppendBinary(dst []byte) ([]byte, error) {
	e := codec.NewEnc(dst, codec.KindAdaptive)
	EncodeDomain(e, a.dom)
	e.F64(a.eps)
	e.F64(a.alpha)
	e.U32(uint32(a.m1))
	for k := range a.cells {
		cell := &a.cells[k]
		e.U32(uint32(cell.m2))
		e.F64s(cell.leaves.Sums())
	}
	sat, err := a.encodeSAT()
	if err != nil {
		return nil, err
	}
	e.SATSection(sat)
	return e.Bytes(), nil
}

// encodeSAT computes the AG container's level-1 summed-area trailer:
// the prefix table over each cell table's total (its sums table's last
// entry). It is deliberately NOT a.level1 — a freshly built AG's
// level-1 table holds the constrained-inference v' totals, which
// diverge from the leaf-table totals by float rounding and are not
// derivable from the file. Defining the trailer over what the file
// actually stores is what lets the decoder verify it bit-for-bit and
// keeps a SAT-backed decode answer-identical to a section-ignoring
// rebuild.
func (a *AdaptiveGrid) encodeSAT() ([]float64, error) {
	totals, err := grid.New(a.dom, a.m1, a.m1)
	if err != nil {
		return nil, fmt.Errorf("core: encode AG SAT: %w", err)
	}
	vals := totals.Values()
	for k := range a.cells {
		vals[k] = a.cells[k].leaves.Total()
	}
	return grid.NewPrefix(totals).Sums(), nil
}

// ParseUniformGridBinary deserializes a UG dpgridv2 container,
// validating all structural invariants.
func ParseUniformGridBinary(data []byte) (*UniformGrid, error) {
	f, err := decodeUGBinary(data, true)
	if err != nil {
		return nil, err
	}
	return f.build()
}

// ParseAdaptiveGridBinary deserializes an AG dpgridv2 container,
// validating all structural invariants.
func ParseAdaptiveGridBinary(data []byte) (*AdaptiveGrid, error) {
	f, err := decodeAGBinary(data, true, false)
	if err != nil {
		return nil, err
	}
	return f.build()
}

// ValidateUniformGridBinary runs every structural and value check of
// ParseUniformGridBinary without materializing the synopsis — no large
// allocations, no prefix build. A payload that validates cannot fail a
// later parse; lazy shard loading relies on that.
func ValidateUniformGridBinary(data []byte) (BinaryInfo, error) {
	f, err := decodeUGBinary(data, false)
	if err != nil {
		return BinaryInfo{}, err
	}
	return BinaryInfo{Dom: f.dom, Eps: f.eps, SAT: f.rawSAT != nil}, nil
}

// ValidateAdaptiveGridBinary is ValidateUniformGridBinary for AG
// payloads.
func ValidateAdaptiveGridBinary(data []byte) (BinaryInfo, error) {
	f, err := decodeAGBinary(data, false, false)
	if err != nil {
		return BinaryInfo{}, err
	}
	return BinaryInfo{Dom: f.dom, Eps: f.eps, SAT: f.rawSAT != nil}, nil
}

// EncodeDomain appends a domain's four bounds as float64s — the shared
// wire form every container kind (including internal/shard's manifests)
// uses for domains. Kept as a wrapper over codec's Enc.Domain for
// callers already importing core.
func EncodeDomain(e *codec.Enc, dom geom.Domain) { e.Domain(dom) }

// DecodeDomain reads and validates the four-bound wire form
// EncodeDomain writes.
func DecodeDomain(d *codec.Dec) (geom.Domain, error) { return d.Domain() }

type ugBinary struct {
	dom       geom.Domain
	eps       float64
	m         int
	mx, my    int
	rawCounts []byte    // counts section in place (a view into data)
	rawSAT    []byte    // stored SAT section in place; nil when absent
	counts    []float64 // nil when decoded in validate-only mode
	sums      []float64 // decoded SAT; nil when absent or validate-only
}

// decodeUGBinary reads and validates a UG container. With keep false it
// checks every invariant — including count finiteness and the stored
// SAT's bitwise consistency with the counts, scanned in place — but
// materializes nothing; the raw section views are captured either way.
func decodeUGBinary(data []byte, keep bool) (ugBinary, error) {
	var f ugBinary
	d, kind, err := codec.NewDec(data)
	if err != nil {
		return f, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	if kind != codec.KindUniform {
		return f, fmt.Errorf("core: container kind %v is not %v", kind, codec.KindUniform)
	}
	f.dom, err = DecodeDomain(d)
	if err != nil {
		return f, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	f.eps = d.F64()
	f.m, f.mx, f.my = d.Int32(), d.Int32(), d.Int32()
	if err := d.Err(); err != nil {
		return f, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	if !(f.eps > 0) {
		return f, fmt.Errorf("core: invalid epsilon %g", f.eps)
	}
	if f.m < 1 {
		return f, fmt.Errorf("core: invalid grid size %d", f.m)
	}
	// uint64 arithmetic: both factors come from u32 fields, and an
	// int64 product of two adversarial 4e9 values would overflow and
	// wrap past the cap.
	if f.mx < 1 || f.my < 1 || uint64(f.mx)*uint64(f.my) > grid.MaxCells {
		return f, fmt.Errorf("core: invalid grid dimensions %dx%d", f.mx, f.my)
	}
	f.rawCounts = d.RawF64s(f.mx * f.my)
	f.rawSAT = d.SATSection(f.mx, f.my)
	if err := d.Finish(); err != nil {
		return f, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	if err := checkFiniteRaw(f.rawCounts); err != nil {
		return f, err
	}
	if f.rawSAT != nil {
		err := codec.CheckSATRaw(f.rawSAT, f.mx, f.my, func(i int) float64 {
			return codec.F64At(f.rawCounts, i)
		})
		if err != nil {
			return f, fmt.Errorf("core: parse UG synopsis: %w", err)
		}
	}
	if keep {
		f.counts = decodeF64s(f.rawCounts)
		if f.rawSAT != nil {
			f.sums = decodeF64s(f.rawSAT)
		}
	}
	return f, nil
}

func (f *ugBinary) build() (*UniformGrid, error) {
	counts, err := grid.New(f.dom, f.mx, f.my)
	if err != nil {
		return nil, err
	}
	copy(counts.Values(), f.counts)
	// With a stored SAT the prefix table is adopted rather than rebuilt;
	// the decode-time bitwise check against the counts guarantees it is
	// the exact table NewPrefix would produce, so both paths answer (and
	// re-encode) identically.
	var prefix *grid.Prefix
	if f.sums != nil {
		prefix, err = grid.PrefixFromSums(f.dom, f.mx, f.my, f.sums)
		if err != nil {
			return nil, fmt.Errorf("core: parse UG synopsis: %w", err)
		}
	} else {
		prefix = grid.NewPrefix(counts)
	}
	return &UniformGrid{
		dom:       f.dom,
		eps:       f.eps,
		m:         f.m,
		mx:        f.mx,
		my:        f.my,
		noisy:     counts,
		prefix:    prefix,
		satBacked: f.sums != nil,
	}, nil
}

// ParseUniformGridBinaryView decodes a UG container into a zero-copy
// view over data when the container carries a stored SAT section:
// queries read the mapped sums bytes in place, and the only decode
// allocations are the view descriptor itself. Containers without the
// section (written before it existed) have no zero-copy query
// structure and fall back to the materializing parser. Either way the
// result retains data; the caller keeps it immutable and alive.
func ParseUniformGridBinaryView(data []byte) (codec.Synopsis, error) {
	f, err := decodeUGBinary(data, false)
	if err != nil {
		return nil, err
	}
	if f.rawSAT == nil {
		return ParseUniformGridBinary(data)
	}
	prefix, err := grid.RawPrefixFromSection(f.dom, f.mx, f.my, f.rawSAT)
	if err != nil {
		return nil, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	return &UGView{
		raw:       data,
		eps:       f.eps,
		m:         f.m,
		rawCounts: f.rawCounts,
		prefix:    prefix,
	}, nil
}

type agBinaryCell struct {
	m2   int
	sums []float64 // nil when decoded in validate-only mode
}

type agBinary struct {
	dom      geom.Domain
	eps      float64
	alpha    float64
	m1       int
	cells    []agBinaryCell
	m2s      []int     // every cell's m2, kept in all modes
	totals   []float64 // every cell table's last entry (its total)
	rawCells [][]byte  // raw sums sections in place; only when keepRaw
	rawSAT   []byte    // stored level-1 SAT in place; nil when absent
	sums     []float64 // decoded SAT; nil when absent or not keep
}

// decodeAGBinary reads and validates an AG container (see decodeUGBinary
// for the keep contract; keepRaw additionally captures each cell's raw
// sums section for the zero-copy view builder). Each cell's sums table
// is checked for finiteness and the zero border every NewPrefix-built
// table has; a stored level-1 SAT is checked bit-for-bit against the
// cell totals it summarizes. The per-cell m2s and totals (O(m1^2), a
// sliver of the payload the minimum-cell-size guard already bounded)
// are collected in every mode — the SAT sits after the cells, so its
// consistency check needs the totals of all of them.
func decodeAGBinary(data []byte, keep, keepRaw bool) (agBinary, error) {
	var f agBinary
	d, kind, err := codec.NewDec(data)
	if err != nil {
		return f, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	if kind != codec.KindAdaptive {
		return f, fmt.Errorf("core: container kind %v is not %v", kind, codec.KindAdaptive)
	}
	f.dom, err = DecodeDomain(d)
	if err != nil {
		return f, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	f.eps = d.F64()
	f.alpha = d.F64()
	f.m1 = d.Int32()
	if err := d.Err(); err != nil {
		return f, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	if !(f.eps > 0) {
		return f, fmt.Errorf("core: invalid epsilon %g", f.eps)
	}
	if !(f.alpha > 0 && f.alpha < 1) {
		return f, fmt.Errorf("core: invalid alpha %g", f.alpha)
	}
	if f.m1 < 1 || uint64(f.m1)*uint64(f.m1) > grid.MaxCells {
		return f, fmt.Errorf("core: invalid m1 %d", f.m1)
	}
	n := f.m1 * f.m1
	// Every encoded cell occupies at least 44 bytes (u32 m2, u64 length
	// prefix, and a minimum 2x2 sums table), so an m1 whose cells cannot
	// fit in the remaining payload is corrupt. Checking before the
	// allocation below keeps a hostile header from demanding gigabytes
	// for a claim the file's own size refutes.
	const minCellBytes = 4 + 8 + 4*8
	if n > d.Remaining()/minCellBytes {
		return f, fmt.Errorf("core: m1 %d demands %d cells but only %d bytes remain", f.m1, n, d.Remaining())
	}
	if keep {
		f.cells = make([]agBinaryCell, 0, n)
	}
	if keepRaw {
		f.rawCells = make([][]byte, 0, n)
	}
	f.m2s = make([]int, 0, n)
	f.totals = make([]float64, 0, n)
	for k := 0; k < n; k++ {
		m2 := d.Int32()
		if err := d.Err(); err != nil {
			return f, fmt.Errorf("core: cell %d: %w", k, err)
		}
		if m2 < 1 || uint64(m2)*uint64(m2) > grid.MaxCells {
			return f, fmt.Errorf("core: cell %d: invalid m2 %d", k, m2)
		}
		raw := d.RawF64s((m2 + 1) * (m2 + 1))
		if err := d.Err(); err != nil {
			return f, fmt.Errorf("core: cell %d: %w", k, err)
		}
		if err := checkSumsRaw(raw, m2); err != nil {
			return f, fmt.Errorf("core: cell %d: %w", k, err)
		}
		f.m2s = append(f.m2s, m2)
		f.totals = append(f.totals, codec.F64At(raw, (m2+1)*(m2+1)-1))
		if keep {
			f.cells = append(f.cells, agBinaryCell{m2: m2, sums: decodeF64s(raw)})
		}
		if keepRaw {
			f.rawCells = append(f.rawCells, raw)
		}
	}
	f.rawSAT = d.SATSection(f.m1, f.m1)
	if err := d.Finish(); err != nil {
		return f, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	if f.rawSAT != nil {
		err := codec.CheckSATRaw(f.rawSAT, f.m1, f.m1, func(i int) float64 {
			return f.totals[i]
		})
		if err != nil {
			return f, fmt.Errorf("core: parse AG synopsis: %w", err)
		}
		if keep {
			f.sums = decodeF64s(f.rawSAT)
		}
	}
	return f, nil
}

func (f *agBinary) build() (*AdaptiveGrid, error) {
	ag := &AdaptiveGrid{
		dom:   f.dom,
		eps:   f.eps,
		alpha: f.alpha,
		m1:    f.m1,
		cells: make([]agCell, f.m1*f.m1),
	}
	totals, err := grid.New(f.dom, f.m1, f.m1)
	if err != nil {
		return nil, err
	}
	leafPop := 0
	maxM2 := 1
	for iy := 0; iy < f.m1; iy++ {
		for ix := 0; ix < f.m1; ix++ {
			k := iy*f.m1 + ix
			cf := f.cells[k]
			cellRect := f.dom.CellRect(ix, iy, f.m1, f.m1)
			prefix, err := grid.PrefixFromSums(geom.Domain{Rect: cellRect}, cf.m2, cf.m2, cf.sums)
			if err != nil {
				return nil, fmt.Errorf("core: cell %d: %w", k, err)
			}
			ag.cells[k] = agCell{
				rect:   cellRect,
				m2:     cf.m2,
				total:  prefix.Total(),
				leaves: prefix,
			}
			totals.Set(ix, iy, prefix.Total())
			leafPop += cf.m2 * cf.m2
			if cf.m2 > maxM2 {
				maxM2 = cf.m2
			}
		}
	}
	// A stored SAT was verified bit-identical to NewPrefix(totals) at
	// decode time, so adopting it changes no answer — it just skips the
	// rebuild.
	if f.sums != nil {
		ag.level1, err = grid.PrefixFromSums(f.dom, f.m1, f.m1, f.sums)
		if err != nil {
			return nil, fmt.Errorf("core: parse AG synopsis: %w", err)
		}
		ag.satBacked = true
	} else {
		ag.level1 = grid.NewPrefix(totals)
	}
	ag.leafPop = leafPop
	ag.maxM2 = maxM2
	ag.epsLevel = [2]float64{f.alpha * f.eps, (1 - f.alpha) * f.eps}
	return ag, nil
}

// ParseAdaptiveGridBinaryView is ParseUniformGridBinaryView for AG
// containers: with a stored SAT section, the level-1 table and every
// cell's sums table are served zero-copy from data (the view
// materializes O(m1^2) cell descriptors, never the float payload);
// without one it falls back to the materializing parser.
func ParseAdaptiveGridBinaryView(data []byte) (codec.Synopsis, error) {
	f, err := decodeAGBinary(data, false, true)
	if err != nil {
		return nil, err
	}
	if f.rawSAT == nil {
		return ParseAdaptiveGridBinary(data)
	}
	level1, err := grid.RawPrefixFromSection(f.dom, f.m1, f.m1, f.rawSAT)
	if err != nil {
		return nil, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	v := &AGView{
		raw:    data,
		eps:    f.eps,
		alpha:  f.alpha,
		m1:     f.m1,
		level1: level1,
		cells:  make([]agViewCell, f.m1*f.m1),
	}
	for iy := 0; iy < f.m1; iy++ {
		for ix := 0; ix < f.m1; ix++ {
			k := iy*f.m1 + ix
			cellRect := f.dom.CellRect(ix, iy, f.m1, f.m1)
			m2 := f.m2s[k]
			leaves, err := grid.RawPrefixFromSection(geom.Domain{Rect: cellRect}, m2, m2, f.rawCells[k])
			if err != nil {
				return nil, fmt.Errorf("core: cell %d: %w", k, err)
			}
			v.cells[k] = agViewCell{
				rect:   cellRect,
				m2:     m2,
				total:  f.totals[k],
				leaves: leaves,
			}
		}
	}
	return v, nil
}

// decodeF64s materializes a raw float64 section.
func decodeF64s(raw []byte) []float64 { return codec.DecodeF64s(raw) }

// checkFiniteRaw is checkFinite over an undecoded float64 section.
func checkFiniteRaw(raw []byte) error { return codec.CheckFiniteRaw(raw) }

// checkSumsRaw validates an undecoded (m2+1)^2 prefix-sum table: every
// entry finite, first row and column zero (grid.PrefixFromSums enforces
// the same border, so validate-only and materializing decodes accept
// exactly the same payloads).
func checkSumsRaw(raw []byte, m2 int) error {
	return codec.CheckPrefixSumsRaw(raw, m2, m2)
}
