package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/dpgrid/dpgrid/internal/datasets"
	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

const benchIngestPoints = 1 << 20

func benchIngestData(b *testing.B) ([]geom.Point, geom.Domain) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	dom := geom.MustDomain(0, 0, 100, 100)
	pts := make([]geom.Point, benchIngestPoints)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts, dom
}

func benchIngestCSV(b *testing.B, pts []geom.Point) geom.PointSeq {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.csv")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := datasets.WriteCSV(f, pts); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return datasets.CSVFileSeq{Path: path}
}

// BenchmarkAGBuildFused measures full AG build throughput at 1M points
// in points/sec across the ingestion engine's modes: the fused
// single-pass build (point index on) vs the streaming multi-pass build
// (index disabled — the pre-engine scan structure), sequential vs
// parallel, in-memory vs CSV. Every variant releases bit-identical
// synopses per seed; only the wall clock moves.
func BenchmarkAGBuildFused(b *testing.B) {
	pts, dom := benchIngestData(b)
	sources := []struct {
		name string
		seq  geom.PointSeq
	}{
		{"mem", geom.SlicePoints(pts)},
		{"csv", benchIngestCSV(b, pts)},
	}
	// IndexLimit 1<<30 forces the point index even for the in-memory
	// source (whose auto plan skips it), so both plans are measured for
	// both sources; -1 is the streaming multi-pass plan.
	modes := []struct {
		name string
		opts AGOptions
	}{
		{"fused/seq", AGOptions{Workers: 1, IndexLimit: 1 << 30}},
		{"fused/par", AGOptions{Workers: 0, IndexLimit: 1 << 30}},
		{"streaming/seq", AGOptions{Workers: 1, IndexLimit: -1}},
		{"streaming/par", AGOptions{Workers: 0, IndexLimit: -1}},
	}
	for _, src := range sources {
		for _, mode := range modes {
			b.Run(src.name+"/"+mode.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := BuildAdaptiveGridSeq(src.seq, dom, 1, mode.opts, noise.NewSource(int64(i))); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(benchIngestPoints)*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
			})
		}
	}
}

// BenchmarkUGBuildWorkers is the UG counterpart: a two-scan (auto-size)
// build, sequential vs parallel, in-memory vs CSV.
func BenchmarkUGBuildWorkers(b *testing.B) {
	pts, dom := benchIngestData(b)
	sources := []struct {
		name string
		seq  geom.PointSeq
	}{
		{"mem", geom.SlicePoints(pts)},
		{"csv", benchIngestCSV(b, pts)},
	}
	for _, src := range sources {
		for _, workers := range []int{1, 0} {
			name := src.name + "/seq"
			if workers != 1 {
				name = src.name + "/par"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := BuildUniformGridSeq(src.seq, dom, 1, UGOptions{Workers: workers}, noise.NewSource(int64(i))); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(benchIngestPoints)*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
			})
		}
	}
}
