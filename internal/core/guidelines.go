// Package core implements the paper's primary contribution: the Uniform
// Grid (UG) and Adaptive Grid (AG) methods for publishing a differentially
// private synopsis of a two-dimensional point dataset, together with the
// parameter guidelines of section IV.
//
//   - Guideline 1 (UG): grid size m = sqrt(N*eps/c) with c = 10.
//   - Guideline 2 (AG): second-level size m2 = ceil(sqrt(N'*(1-alpha)*eps/c2))
//     with c2 = c/2 = 5, where N' is the first-level cell's noisy count.
//   - First-level AG size m1 = max(10, sqrt(N*eps/c)/4).
//
// The formulas were disambiguated against Table II of the paper; see
// DESIGN.md ("Formula derivations pinned against the paper").
package core

import "math"

// Default parameter constants from the paper's experimental sections.
const (
	// DefaultC is the Guideline 1 constant c; "setting c = 10 works well
	// for datasets of different sizes and different choices of eps".
	DefaultC = 10.0
	// DefaultC2 is the Guideline 2 constant c2 = c/2.
	DefaultC2 = DefaultC / 2
	// DefaultAlpha is the AG budget split between the two levels;
	// "setting alpha in the range of 0.2 to 0.6 give very similar
	// results. We use alpha = 0.5 as the default value."
	DefaultAlpha = 0.5
	// DefaultMaxM2 caps the per-cell second-level grid size as a safety
	// bound against pathological noisy counts; far above anything the
	// paper's datasets produce (their best m2 values are < 100).
	DefaultMaxM2 = 256
	// MinM1 is the lower bound on the AG first-level grid size
	// (paper: m1 = max(10, ...)).
	MinM1 = 10
)

// GuidelineGridSize returns the real-valued Guideline 1 grid size
// sqrt(n*eps/c). Callers round it to an integer; exposing the real value
// lets the m1 rule divide before rounding, matching the paper's Table II
// and Figure 4 annotations exactly.
func GuidelineGridSize(n, eps, c float64) float64 {
	if n <= 0 || eps <= 0 || c <= 0 {
		return 1
	}
	return math.Sqrt(n * eps / c)
}

// SuggestedUGSize returns Guideline 1's integer grid size for a dataset of
// n points under total budget eps: round(sqrt(n*eps/c)), at least 1.
// With c = DefaultC this reproduces the "UG sugg." column of Table II.
func SuggestedUGSize(n, eps, c float64) int {
	m := int(math.Round(GuidelineGridSize(n, eps, c)))
	if m < 1 {
		m = 1
	}
	return m
}

// SuggestedM1 returns the AG first-level grid size
// max(10, round(sqrt(n*eps/c)/4)) (section IV-B). With c = DefaultC this
// reproduces the "suggested m1" annotations of Figure 4 (e.g. 25 and 79
// for the checkin dataset at eps = 0.1 and 1).
func SuggestedM1(n, eps, c float64) int {
	m1 := int(math.Round(GuidelineGridSize(n, eps, c) / 4))
	if m1 < MinM1 {
		m1 = MinM1
	}
	return m1
}

// SuggestedM2 returns Guideline 2's second-level grid size for a
// first-level cell with noisy count nPrime when the remaining (leaf)
// budget is remEps = (1-alpha)*eps: ceil(sqrt(nPrime*remEps/c2)), at
// least 1 and at most maxM2.
func SuggestedM2(nPrime, remEps, c2 float64, maxM2 int) int {
	if nPrime <= 0 || remEps <= 0 || c2 <= 0 {
		return 1
	}
	m2 := int(math.Ceil(math.Sqrt(nPrime * remEps / c2)))
	if m2 < 1 {
		m2 = 1
	}
	if maxM2 > 0 && m2 > maxM2 {
		m2 = maxM2
	}
	return m2
}
