package core

import (
	"fmt"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// BenchmarkQueryRect pins the tentpole perf claim of the summed-area
// fast path: a rectangle answer off the stored SAT costs four corner
// lookups regardless of the rectangle's size, while the cell-iteration
// baseline walks every covered cell. The sub-benchmark grid sweeps the
// query from a single cell to the full domain for both kinds; the
// committed BENCH_query.json records the trajectory (sat ns/query flat
// across the sweep, iter superlinear).
func BenchmarkQueryRect(b *testing.B) {
	dom := geom.MustDomain(0, 0, 1024, 1024)

	// Rect spanning k of the m per-axis cells, aligned to cell
	// boundaries at the origin corner — the case the fast path answers
	// from whole-cell sums with no fractional-coverage work. k == m is
	// exactly the full domain.
	rectCells := func(m, k int) geom.Rect {
		cw := dom.Width() / float64(m)
		ch := dom.Height() / float64(m)
		return geom.NewRect(dom.MinX, dom.MinY,
			dom.MinX+float64(k)*cw, dom.MinY+float64(k)*ch)
	}

	const m = 128
	ug, err := BuildUniformGrid(clusteredPoints(42, 20000, dom), dom, 1, UGOptions{GridSize: m}, noise.NewSource(42))
	if err != nil {
		b.Fatal(err)
	}
	ag, err := BuildAdaptiveGrid(clusteredPoints(43, 20000, dom), dom, 1, AGOptions{M1: m / 4, MaxM2: 8}, noise.NewSource(43))
	if err != nil {
		b.Fatal(err)
	}

	type querier interface {
		Query(geom.Rect) float64
	}
	kinds := []struct {
		name string
		sat  querier
		iter iterQuerier
		m    int // per-axis resolution the cells= sweep is expressed in
	}{
		{"ug", ug, ug, m},
		{"ag", ag, ag, m / 4},
	}
	for _, kind := range kinds {
		for _, k := range []int{1, kind.m / 8, kind.m / 4, kind.m / 2, kind.m} {
			label := fmt.Sprintf("cells=%d", k)
			if k == kind.m {
				label = "cells=full"
			}
			r := rectCells(kind.m, k)
			b.Run(fmt.Sprintf("kind=%s/path=sat/%s", kind.name, label), func(b *testing.B) {
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += kind.sat.Query(r)
				}
				benchSink = sink
			})
			b.Run(fmt.Sprintf("kind=%s/path=iter/%s", kind.name, label), func(b *testing.B) {
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += kind.iter.QueryIter(r)
				}
				benchSink = sink
			})
		}
	}
}

// benchSink defeats dead-code elimination of the benchmarked queries.
var benchSink float64
