package core

import (
	"fmt"
	"sync/atomic"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/grid"
	"github.com/dpgrid/dpgrid/internal/pool"
)

// DefaultAGIndexPoints is the default cap on how many in-domain points
// the fused AG build may buffer in its level-1-binned index (see
// AGOptions.IndexLimit): 8M points is ~128 MiB of point data — cheap on
// any machine that wants a fast build — while datasets past the cap
// degrade gracefully to the streaming re-scan leaf pass.
const DefaultAGIndexPoints = 8 << 20

// maxRescanFloats bounds the aggregate size of the per-worker partial
// leaf histograms the streaming re-scan leaf pass allocates; past it,
// the pass sheds workers rather than multiplying a huge leaf population
// by the worker count. 2^27 float64s = 1 GiB.
const maxRescanFloats = 1 << 27

// cellPoints is the compact level-1-binned point index the fused AG
// scan produces: all in-domain points in one flat slice, grouped by
// first-level cell (CSR layout, counting sort by cell). The leaf pass
// iterates one cell's contiguous bin at a time — cache-local, and
// trivially cell-parallel — instead of re-scanning (and, for file
// sources, re-parsing) the raw stream.
type cellPoints struct {
	starts []int // len m1*m1+1; bin k is pts[starts[k]:starts[k+1]]
	pts    []geom.Point
}

func (c *cellPoints) bin(k int) []geom.Point { return c.pts[c.starts[k]:c.starts[k+1]] }

// collectInDomain counts seq's in-domain points across workers while
// buffering them, so the m1-rule pass can double as the point-gathering
// pass: when the count stays within limit, the returned slice holds
// every in-domain point and the histogram pass can run over memory
// instead of a second scan of the source. Past limit the buffers are
// dropped (count continues exactly) and pts is nil.
func collectInDomain(seq geom.PointSeq, dom geom.Domain, workers, limit int) (pts []geom.Point, n int64, err error) {
	workers = pool.Workers(workers)
	bufs := make([][]geom.Point, workers)
	counts := make([]int64, workers)
	var buffered atomic.Int64
	var dead atomic.Bool
	err = geom.ForEachChunkParallel(seq, workers, func(w int, chunk []geom.Point) {
		buf, c := bufs[w], counts[w]
		keep := !dead.Load()
		kept := 0
		for _, p := range chunk {
			if !dom.Contains(p) {
				continue
			}
			c++
			if keep {
				buf = append(buf, p)
				kept++
			}
		}
		bufs[w], counts[w] = buf, c
		if keep && buffered.Add(int64(kept)) > int64(limit) {
			dead.Store(true)
		}
	})
	if err != nil {
		return nil, 0, fmt.Errorf("core: counting points: %w", err)
	}
	for _, c := range counts {
		n += c
	}
	if dead.Load() {
		return nil, n, nil
	}
	pts = make([]geom.Point, 0, n)
	for _, buf := range bufs {
		pts = append(pts, buf...)
	}
	return pts, n, nil
}

// histogramIndexed is the fused AG scan: one pass over seq produces the
// exact first-level m1 x m1 histogram and, when the in-domain point
// count stays within limit, the level-1-binned point index the leaf
// pass consumes in place of a second scan. limit <= 0 disables the
// index (pure streaming build); past the limit mid-scan the index is
// abandoned while the histogram completes exactly.
//
// The histogram is bit-identical to grid.FromSeqParallel's for every
// workers value (integer counts merge exactly under any stream
// partition), and the index holds exactly the histogrammed points,
// keyed by the same binning.
func histogramIndexed(seq geom.PointSeq, dom geom.Domain, m1, workers, limit int) (*grid.Counts, *cellPoints, error) {
	workers = pool.Workers(workers)
	if sp, ok := seq.(geom.SlicePoints); ok {
		return histogramIndexedSlice(sp, dom, m1, workers, limit)
	}
	if workers > 1 && m1*m1 > maxRescanFloats/workers {
		// Shed workers rather than multiplying a near-cap histogram
		// allocation by the core count.
		if workers = maxRescanFloats / (m1 * m1); workers < 1 {
			workers = 1
		}
	}
	level1, err := grid.New(dom, m1, m1)
	if err != nil {
		return nil, nil, err
	}
	w1, h1 := dom.CellSize(m1, m1)

	type wstate struct {
		vals []float64
		pts  []geom.Point
		keys []int32 // level-1 cell per buffered point (m1*m1 <= MaxCells < 2^31)
	}
	states := make([]*wstate, workers)
	var buffered atomic.Int64
	var dead atomic.Bool
	if limit <= 0 {
		dead.Store(true)
	}
	err = geom.ForEachChunkParallel(seq, workers, func(w int, chunk []geom.Point) {
		st := states[w]
		if st == nil {
			st = &wstate{vals: make([]float64, m1*m1)}
			states[w] = st
		}
		keep := !dead.Load()
		kept := 0
		for _, p := range chunk {
			if !dom.Contains(p) {
				continue
			}
			ix, iy := dom.CellIndexAt(p, w1, h1, m1, m1)
			k := iy*m1 + ix
			st.vals[k]++
			if keep {
				st.pts = append(st.pts, p)
				st.keys = append(st.keys, int32(k))
				kept++
			}
		}
		if keep && buffered.Add(int64(kept)) > int64(limit) {
			dead.Store(true)
		}
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: scanning points: %w", err)
	}

	// Merge the partial histograms in fixed worker order (exact for
	// integer counts under any order; the fixed order keeps the merge
	// reproducible by inspection).
	vals := level1.Values()
	for _, st := range states {
		if st == nil {
			continue
		}
		for i, v := range st.vals {
			vals[i] += v
		}
	}
	if dead.Load() {
		return level1, nil, nil
	}

	// Counting sort into CSR bins: the histogram already holds every
	// bin's size, so one cursor sweep places each worker's buffered
	// points. Bin-internal order depends on chunk scheduling, which is
	// fine — every consumer of a bin computes order-free integer sums.
	idx := &cellPoints{starts: make([]int, m1*m1+1)}
	for k := 0; k < m1*m1; k++ {
		idx.starts[k+1] = idx.starts[k] + int(vals[k])
	}
	idx.pts = make([]geom.Point, idx.starts[m1*m1])
	cursor := make([]int, m1*m1)
	copy(cursor, idx.starts[:m1*m1])
	for _, st := range states {
		if st == nil {
			continue
		}
		for j, p := range st.pts {
			k := st.keys[j]
			idx.pts[cursor[k]] = p
			cursor[k]++
		}
	}
	return level1, idx, nil
}

// histogramIndexedSlice is histogramIndexed for a stable in-memory
// source: the histogram pass runs with no point buffering at all
// (grid.FromSeqParallel over the slice), and the CSR index — when the
// in-domain count fits limit — scatters directly from the slice,
// recomputing each point's key with the same arithmetic. Peak extra
// memory is the index itself, never per-worker copies of the data.
func histogramIndexedSlice(sp geom.SlicePoints, dom geom.Domain, m1, workers, limit int) (*grid.Counts, *cellPoints, error) {
	level1, err := grid.FromSeqParallel(dom, m1, m1, sp, workers)
	if err != nil {
		return nil, nil, err
	}
	vals := level1.Values()
	var total float64
	for _, v := range vals {
		total += v
	}
	if limit <= 0 || total > float64(limit) {
		return level1, nil, nil
	}
	idx := &cellPoints{starts: make([]int, m1*m1+1)}
	for k := 0; k < m1*m1; k++ {
		idx.starts[k+1] = idx.starts[k] + int(vals[k])
	}
	idx.pts = make([]geom.Point, idx.starts[m1*m1])
	cursor := make([]int, m1*m1)
	copy(cursor, idx.starts[:m1*m1])
	w1, h1 := dom.CellSize(m1, m1)
	for _, p := range sp {
		if !dom.Contains(p) {
			continue
		}
		ix, iy := dom.CellIndexAt(p, w1, h1, m1, m1)
		k := iy*m1 + ix
		idx.pts[cursor[k]] = p
		cursor[k]++
	}
	return level1, idx, nil
}

// leafGeom is one first-level cell's leaf-binning geometry, computed
// once per cell instead of once per point: the cell's min corner, the
// leaf cell size, and its reciprocal so the hot path bins with
// multiplies instead of divisions.
type leafGeom struct {
	minX, minY float64
	w, h       float64 // leaf cell extent (cell size / m2)
	invW, invH float64
	m2         int
}

func leafGeomFor(dom geom.Domain, ix, iy, m1, m2 int) leafGeom {
	r := dom.CellRect(ix, iy, m1, m1)
	w := r.Width() / float64(m2)
	h := r.Height() / float64(m2)
	return leafGeom{minX: r.MinX, minY: r.MinY, w: w, h: h, invW: 1 / w, invH: 1 / h, m2: m2}
}

// leaf maps p to its leaf cell. The reciprocal multiply can land an ulp
// off the true bin, so a snap step corrects against the cell's actual
// edge coordinates, enforcing the package-wide convention exactly: a
// point on an interior leaf edge belongs to the higher-index leaf.
func (g *leafGeom) leaf(p geom.Point) (lx, ly int) {
	lx = snapScaled((p.X-g.minX)*g.invW, p.X-g.minX, g.w, g.m2)
	ly = snapScaled((p.Y-g.minY)*g.invH, p.Y-g.minY, g.h, g.m2)
	return lx, ly
}

// snapScaled turns the approximate bin index scaled = off*(1/w) into
// the exact index of the bin [i*w, (i+1)*w) containing off, clamped to
// [0, m). The correction loops run at most once for any off within an
// ulp of the multiply's answer — i.e. always, in practice.
//
// Snapping against the bin's actual edge coordinates is deliberate: it
// enforces the package-wide documented convention (a point on an
// interior edge belongs to the higher-index bin) exactly, which the
// old per-point division could itself miss by an ulp when the quotient
// rounded across an edge. On ulp-edge coordinates this can bin a point
// one leaf away from the pre-engine build; the golden files under
// testdata/ pin the released encodings and confirm the real datasets
// are unaffected.
func snapScaled(scaled, off, w float64, m int) int {
	i := int(scaled)
	for i+1 < m && off >= float64(i+1)*w {
		i++
	}
	for i > 0 && off < float64(i)*w {
		i--
	}
	if i < 0 {
		i = 0
	}
	if i >= m {
		i = m - 1
	}
	return i
}

// leafFill builds every cell's exact leaf histogram from the binned
// point index: cell-parallel, each cell reading its own contiguous bin
// and writing its own disjoint leafFlat range.
func leafFill(idx *cellPoints, dom geom.Domain, m1 int, m2s, leafStarts []int, leafFlat []float64, workers int) {
	pool.For(m1*m1, workers, func(k int) {
		m2 := m2s[k]
		g := leafGeomFor(dom, k%m1, k/m1, m1, m2)
		leaves := leafFlat[leafStarts[k]:leafStarts[k+1]]
		for _, p := range idx.bin(k) {
			lx, ly := g.leaf(p)
			leaves[ly*m2+lx]++
		}
	})
}

// leafRescan is the streaming fallback when no point index is
// available (IndexLimit disabled or exceeded): one more chunked scan of
// the source builds the leaf histograms, with per-cell geometry
// precomputed once instead of re-derived per point. Parallel workers
// accumulate into private partial buffers merged in fixed worker order
// — exact, like every histogram merge in this package.
func leafRescan(seq geom.PointSeq, dom geom.Domain, m1 int, m2s, leafStarts []int, leafFlat []float64, workers int) error {
	workers = pool.Workers(workers)
	if workers > 1 && len(leafFlat)*workers > maxRescanFloats {
		if workers = maxRescanFloats / len(leafFlat); workers < 1 {
			workers = 1
		}
	}
	geoms := make([]leafGeom, m1*m1)
	for k := range geoms {
		geoms[k] = leafGeomFor(dom, k%m1, k/m1, m1, m2s[k])
	}
	w1, h1 := dom.CellSize(m1, m1)
	partials := make([][]float64, workers)
	err := geom.ForEachChunkParallel(seq, workers, func(w int, chunk []geom.Point) {
		flat := partials[w]
		if flat == nil {
			if workers == 1 {
				flat = leafFlat // sequential scan histograms in place
			} else {
				flat = make([]float64, len(leafFlat))
			}
			partials[w] = flat
		}
		for _, p := range chunk {
			if !dom.Contains(p) {
				continue
			}
			ix, iy := dom.CellIndexAt(p, w1, h1, m1, m1)
			k := iy*m1 + ix
			g := &geoms[k]
			lx, ly := g.leaf(p)
			flat[leafStarts[k]+ly*g.m2+lx]++
		}
	})
	if err != nil {
		return fmt.Errorf("core: second pass: %w", err)
	}
	if workers == 1 {
		return nil
	}
	for _, flat := range partials {
		if flat == nil {
			continue
		}
		for i, v := range flat {
			leafFlat[i] += v
		}
	}
	return nil
}
