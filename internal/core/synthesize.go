package core

import (
	"fmt"
	"math"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// The paper's framework (section II-B): "This synopsis can then be used
// either for generating a synthetic dataset, or for answering queries
// directly." This file implements the first use: sampling a synthetic
// point set from a released synopsis. Sampling is post-processing of the
// noisy counts, so it consumes no privacy budget.

// weightedCell pairs a cell rectangle with its (clamped non-negative)
// noisy count.
type weightedCell struct {
	rect   geom.Rect
	weight float64
}

// synthesize draws n points from the density implied by cells: a cell is
// chosen with probability proportional to its clamped count, then a point
// is placed uniformly inside it. n <= 0 draws round(sum of clamped
// counts) points. src supplies the sampling randomness; noise.NewSource
// draws the exact sequence the historical *rand.Rand-based signature
// produced for the same seed.
func synthesize(cells []weightedCell, n int, src noise.Source) ([]geom.Point, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	cum := make([]float64, len(cells))
	var total float64
	for i, c := range cells {
		total += c.weight
		cum[i] = total
	}
	if total <= 0 {
		// A released synopsis of an empty (or all-noise-negative) dataset:
		// nothing to sample.
		return nil, nil
	}
	if n <= 0 {
		n = int(math.Round(total))
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		u := src.Uniform() * total
		k := searchCum(cum, u)
		r := cells[k].rect
		pts[i] = geom.Point{
			X: r.MinX + src.Uniform()*r.Width(),
			Y: r.MinY + src.Uniform()*r.Height(),
		}
	}
	return pts, nil
}

// searchCum returns the first index with cum[i] > u.
func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Synthesize draws a synthetic dataset from the UG synopsis. n <= 0 uses
// the synopsis's own (noisy) estimate of the dataset size. The result is
// differentially private post-processing of the released counts.
func (u *UniformGrid) Synthesize(n int, src noise.Source) ([]geom.Point, error) {
	mx, my := u.mx, u.my
	cells := make([]weightedCell, 0, mx*my)
	for iy := 0; iy < my; iy++ {
		for ix := 0; ix < mx; ix++ {
			w := u.noisy.At(ix, iy)
			if w > 0 {
				cells = append(cells, weightedCell{rect: u.noisy.CellRect(ix, iy), weight: w})
			}
		}
	}
	return synthesize(cells, n, src)
}

// Synthesize draws a synthetic dataset from the AG synopsis using its
// post-inference leaf cells. n <= 0 uses the synopsis's own (noisy)
// estimate of the dataset size.
func (a *AdaptiveGrid) Synthesize(n int, src noise.Source) ([]geom.Point, error) {
	var cells []weightedCell
	for k := range a.cells {
		cell := &a.cells[k]
		m2 := cell.m2
		for ly := 0; ly < m2; ly++ {
			for lx := 0; lx < m2; lx++ {
				w := cell.leaves.BlockSum(lx, ly, lx+1, ly+1)
				if w > 0 {
					r := geom.Domain{Rect: cell.rect}.CellRect(lx, ly, m2, m2)
					cells = append(cells, weightedCell{rect: r, weight: w})
				}
			}
		}
	}
	return synthesize(cells, n, src)
}
