package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

func TestAspectDims(t *testing.T) {
	// checkin-like 360x150 domain: cells should be ~2.4x more columns
	// than rows, with the cell budget preserved.
	dom := geom.MustDomain(-180, -70, 180, 80)
	mx, my := aspectDims(100, dom)
	if mx <= my {
		t.Errorf("wide domain should get more columns: %dx%d", mx, my)
	}
	total := mx * my
	if total < 90*90 || total > 110*110 {
		t.Errorf("cell budget %d far from 10000", total)
	}
	// Cells should be near-square in data units.
	cw := dom.Width() / float64(mx)
	ch := dom.Height() / float64(my)
	if r := cw / ch; r < 0.8 || r > 1.25 {
		t.Errorf("cell aspect ratio %g, want ~1", r)
	}
	// Square domain: no change.
	sq := geom.MustDomain(0, 0, 10, 10)
	mx, my = aspectDims(64, sq)
	if mx != 64 || my != 64 {
		t.Errorf("square domain dims %dx%d, want 64x64", mx, my)
	}
}

func TestAspectAwareUGEndToEnd(t *testing.T) {
	dom := geom.MustDomain(0, 0, 40, 10) // 4:1 domain
	pts := clusteredPoints(71, 8000, dom)
	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{AspectAware: true}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	mx, my := ug.Dims()
	if mx <= my {
		t.Errorf("dims %dx%d, want mx > my on a 4:1 domain", mx, my)
	}
	// Zero-noise full-domain query remains exact.
	if got := ug.Query(geom.NewRect(0, 0, 40, 10)); math.Abs(got-8000) > 1e-6 {
		t.Errorf("full query = %g, want 8000", got)
	}
}

func TestAspectAwareSerializationRoundTrip(t *testing.T) {
	dom := geom.MustDomain(0, 0, 40, 10)
	pts := clusteredPoints(72, 3000, dom)
	orig, err := BuildUniformGrid(pts, dom, 1, UGOptions{AspectAware: true, GridSize: 20}, noise.NewSource(72))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseUniformGrid(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	omx, omy := orig.Dims()
	lmx, lmy := loaded.Dims()
	if omx != lmx || omy != lmy {
		t.Errorf("dims lost: %dx%d vs %dx%d", omx, omy, lmx, lmy)
	}
	r := geom.NewRect(3.3, 1.1, 36.6, 8.8)
	if a, b := orig.Query(r), loaded.Query(r); a != b {
		t.Errorf("round trip changed answer: %g vs %g", a, b)
	}
}

func TestSquareUGDimsDefault(t *testing.T) {
	dom := geom.MustDomain(0, 0, 40, 10)
	ug, err := BuildUniformGrid(nil, dom, 1, UGOptions{GridSize: 8}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	mx, my := ug.Dims()
	if mx != 8 || my != 8 {
		t.Errorf("default dims %dx%d, want 8x8 (the paper's square grid)", mx, my)
	}
}
