package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/grid"
)

// Serialization of released synopses. A synopsis is the publishable
// artifact of the whole pipeline (the paper's definition: "the boundaries
// of these cells and their noisy counts"), so it must survive a round
// trip to disk: the data holder builds and saves once; analysts load and
// query forever after without the raw data.
//
// The format is versioned JSON with an explicit format tag per synopsis
// kind. Loading validates structural invariants (dimensions vs. payload
// lengths, finite counts, valid domain) so a corrupted or hand-edited
// file fails loudly instead of answering garbage.

const (
	// FormatUG tags serialized UniformGrid synopses.
	FormatUG = "dpgrid/uniform-grid"
	// FormatAG tags serialized AdaptiveGrid synopses.
	FormatAG = "dpgrid/adaptive-grid"
	// serializeVersion is bumped on breaking format changes.
	serializeVersion = 1
)

// Envelope is the common header of every serialized synopsis; decode it
// first to learn which concrete type a file holds.
type Envelope struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type ugFile struct {
	Envelope
	Domain  [4]float64 `json:"domain"` // minX, minY, maxX, maxY
	Epsilon float64    `json:"epsilon"`
	M       int        `json:"m"`
	// MX, MY are the actual grid dimensions; 0 (older files) means M x M.
	MX     int       `json:"mx,omitempty"`
	MY     int       `json:"my,omitempty"`
	Counts []float64 `json:"counts"` // row-major mx*my noisy counts
}

type agCellFile struct {
	M2     int       `json:"m2"`
	Leaves []float64 `json:"leaves"` // row-major m2*m2 post-inference counts
}

type agFile struct {
	Envelope
	Domain  [4]float64   `json:"domain"`
	Epsilon float64      `json:"epsilon"`
	Alpha   float64      `json:"alpha"`
	M1      int          `json:"m1"`
	Cells   []agCellFile `json:"cells"` // row-major m1*m1
}

// WriteTo serializes the synopsis as JSON.
func (u *UniformGrid) WriteTo(w io.Writer) (int64, error) {
	f := ugFile{
		Envelope: Envelope{Format: FormatUG, Version: serializeVersion},
		Domain:   [4]float64{u.dom.MinX, u.dom.MinY, u.dom.MaxX, u.dom.MaxY},
		Epsilon:  u.eps,
		M:        u.m,
		MX:       u.mx,
		MY:       u.my,
		Counts:   u.noisy.Values(),
	}
	return writeJSON(w, &f)
}

// WriteTo serializes the synopsis as JSON.
func (a *AdaptiveGrid) WriteTo(w io.Writer) (int64, error) {
	f := agFile{
		Envelope: Envelope{Format: FormatAG, Version: serializeVersion},
		Domain:   [4]float64{a.dom.MinX, a.dom.MinY, a.dom.MaxX, a.dom.MaxY},
		Epsilon:  a.eps,
		Alpha:    a.alpha,
		M1:       a.m1,
	}
	for k := range a.cells {
		cell := &a.cells[k]
		leaves := make([]float64, cell.m2*cell.m2)
		for ly := 0; ly < cell.m2; ly++ {
			for lx := 0; lx < cell.m2; lx++ {
				leaves[ly*cell.m2+lx] = cell.leaves.BlockSum(lx, ly, lx+1, ly+1)
			}
		}
		f.Cells = append(f.Cells, agCellFile{M2: cell.m2, Leaves: leaves})
	}
	return writeJSON(w, &f)
}

func writeJSON(w io.Writer, v any) (int64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("core: marshal synopsis: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadEnvelope decodes only the format header from serialized bytes.
func ReadEnvelope(data []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("core: not a synopsis file: %w", err)
	}
	if env.Format == "" {
		return Envelope{}, fmt.Errorf("core: missing format tag")
	}
	return env, nil
}

// ParseUniformGrid deserializes a UG synopsis, validating all structural
// invariants.
func ParseUniformGrid(data []byte) (*UniformGrid, error) {
	var f ugFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	if f.Format != FormatUG {
		return nil, fmt.Errorf("core: format %q is not %q", f.Format, FormatUG)
	}
	if f.Version != serializeVersion {
		return nil, fmt.Errorf("core: unsupported UG version %d (have %d)", f.Version, serializeVersion)
	}
	dom, err := geom.NewDomain(f.Domain[0], f.Domain[1], f.Domain[2], f.Domain[3])
	if err != nil {
		return nil, fmt.Errorf("core: parse UG synopsis: %w", err)
	}
	if f.M < 1 {
		return nil, fmt.Errorf("core: invalid grid size %d", f.M)
	}
	mx, my := f.MX, f.MY
	if mx == 0 && my == 0 {
		mx, my = f.M, f.M
	}
	if mx < 1 || my < 1 {
		return nil, fmt.Errorf("core: invalid grid dimensions %dx%d", mx, my)
	}
	if len(f.Counts) != mx*my {
		return nil, fmt.Errorf("core: counts length %d != mx*my = %d", len(f.Counts), mx*my)
	}
	if !(f.Epsilon > 0) {
		return nil, fmt.Errorf("core: invalid epsilon %g", f.Epsilon)
	}
	if err := checkFinite(f.Counts); err != nil {
		return nil, err
	}
	counts, err := grid.New(dom, mx, my)
	if err != nil {
		return nil, err
	}
	copy(counts.Values(), f.Counts)
	return &UniformGrid{
		dom:    dom,
		eps:    f.Epsilon,
		m:      f.M,
		mx:     mx,
		my:     my,
		noisy:  counts,
		prefix: grid.NewPrefix(counts),
	}, nil
}

// ParseAdaptiveGrid deserializes an AG synopsis, validating all
// structural invariants.
func ParseAdaptiveGrid(data []byte) (*AdaptiveGrid, error) {
	var f agFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	if f.Format != FormatAG {
		return nil, fmt.Errorf("core: format %q is not %q", f.Format, FormatAG)
	}
	if f.Version != serializeVersion {
		return nil, fmt.Errorf("core: unsupported AG version %d (have %d)", f.Version, serializeVersion)
	}
	dom, err := geom.NewDomain(f.Domain[0], f.Domain[1], f.Domain[2], f.Domain[3])
	if err != nil {
		return nil, fmt.Errorf("core: parse AG synopsis: %w", err)
	}
	if f.M1 < 1 {
		return nil, fmt.Errorf("core: invalid m1 %d", f.M1)
	}
	if len(f.Cells) != f.M1*f.M1 {
		return nil, fmt.Errorf("core: cells length %d != m1^2 = %d", len(f.Cells), f.M1*f.M1)
	}
	if !(f.Epsilon > 0) {
		return nil, fmt.Errorf("core: invalid epsilon %g", f.Epsilon)
	}
	if !(f.Alpha > 0 && f.Alpha < 1) {
		return nil, fmt.Errorf("core: invalid alpha %g", f.Alpha)
	}

	ag := &AdaptiveGrid{
		dom:   dom,
		eps:   f.Epsilon,
		alpha: f.Alpha,
		m1:    f.M1,
		cells: make([]agCell, f.M1*f.M1),
	}
	totals, err := grid.New(dom, f.M1, f.M1)
	if err != nil {
		return nil, err
	}
	leafPop := 0
	maxM2 := 1
	for iy := 0; iy < f.M1; iy++ {
		for ix := 0; ix < f.M1; ix++ {
			k := iy*f.M1 + ix
			cf := f.Cells[k]
			if cf.M2 < 1 {
				return nil, fmt.Errorf("core: cell %d: invalid m2 %d", k, cf.M2)
			}
			if len(cf.Leaves) != cf.M2*cf.M2 {
				return nil, fmt.Errorf("core: cell %d: leaves length %d != m2^2 = %d", k, len(cf.Leaves), cf.M2*cf.M2)
			}
			if err := checkFinite(cf.Leaves); err != nil {
				return nil, fmt.Errorf("core: cell %d: %w", k, err)
			}
			cellRect := dom.CellRect(ix, iy, f.M1, f.M1)
			leafGrid, err := grid.New(geom.Domain{Rect: cellRect}, cf.M2, cf.M2)
			if err != nil {
				return nil, err
			}
			copy(leafGrid.Values(), cf.Leaves)
			prefix := grid.NewPrefix(leafGrid)
			ag.cells[k] = agCell{
				rect:   cellRect,
				m2:     cf.M2,
				total:  prefix.Total(),
				leaves: prefix,
			}
			totals.Set(ix, iy, prefix.Total())
			leafPop += cf.M2 * cf.M2
			if cf.M2 > maxM2 {
				maxM2 = cf.M2
			}
		}
	}
	ag.level1 = grid.NewPrefix(totals)
	ag.leafPop = leafPop
	ag.maxM2 = maxM2
	ag.epsLevel = [2]float64{f.Alpha * f.Epsilon, (1 - f.Alpha) * f.Epsilon}
	return ag, nil
}

func checkFinite(vals []float64) error {
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: non-finite count %g at index %d", v, i)
		}
	}
	return nil
}
