package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

func uniformPoints(seed int64, n int, dom geom.Domain) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: dom.MinX + rng.Float64()*dom.Width(),
			Y: dom.MinY + rng.Float64()*dom.Height(),
		}
	}
	return pts
}

func clusteredPoints(seed int64, n int, dom geom.Domain) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	// Two tight clusters plus sparse background, so non-uniformity matters.
	centers := []geom.Point{
		{X: dom.MinX + 0.25*dom.Width(), Y: dom.MinY + 0.25*dom.Height()},
		{X: dom.MinX + 0.7*dom.Width(), Y: dom.MinY + 0.8*dom.Height()},
	}
	for len(pts) < n {
		var p geom.Point
		switch rng.Intn(10) {
		case 0: // background
			p = geom.Point{X: dom.MinX + rng.Float64()*dom.Width(), Y: dom.MinY + rng.Float64()*dom.Height()}
		default:
			c := centers[rng.Intn(len(centers))]
			p = geom.Point{
				X: c.X + rng.NormFloat64()*dom.Width()/40,
				Y: c.Y + rng.NormFloat64()*dom.Height()/40,
			}
		}
		if dom.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

func TestBuildUniformGridValidation(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(1, 100, dom)
	src := noise.NewSource(1)
	if _, err := BuildUniformGrid(pts, dom, 0, UGOptions{}, src); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := BuildUniformGrid(pts, dom, -1, UGOptions{}, src); err == nil {
		t.Error("eps<0 accepted")
	}
	if _, err := BuildUniformGrid(pts, dom, 1, UGOptions{}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := BuildUniformGrid(pts, dom, 1, UGOptions{GridSize: -3}, src); err == nil {
		t.Error("negative grid size accepted")
	}
	if _, err := BuildUniformGrid(pts, dom, 1, UGOptions{NBudgetFrac: 1.0}, src); err == nil {
		t.Error("NBudgetFrac=1 accepted")
	}
	if _, err := BuildUniformGrid(pts, dom, 1, UGOptions{C: -2}, src); err == nil {
		t.Error("negative c accepted")
	}
}

func TestUGZeroNoiseAlignedQueriesExact(t *testing.T) {
	dom := geom.MustDomain(0, 0, 16, 16)
	pts := clusteredPoints(2, 5000, dom)
	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{GridSize: 8}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := pointindex.New(dom, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Queries aligned to the 8x8 grid (cell width 2) must be exact under
	// zero noise.
	for _, r := range []geom.Rect{
		geom.NewRect(0, 0, 16, 16),
		geom.NewRect(2, 2, 10, 12),
		geom.NewRect(0, 0, 2, 2),
		geom.NewRect(14, 14, 16, 16),
	} {
		got := ug.Query(r)
		want := float64(idx.Count(r))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("zero-noise Query(%v) = %g, want %g", r, got, want)
		}
	}
}

func TestUGZeroNoiseTotalEstimate(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(3, 1234, dom)
	ug, err := BuildUniformGrid(pts, dom, 0.5, UGOptions{}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := ug.TotalEstimate(); math.Abs(got-1234) > 1e-6 {
		t.Errorf("TotalEstimate = %g, want 1234", got)
	}
}

func TestUGUsesGuidelineSize(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(4, 10000, dom)
	eps := 1.0
	ug, err := BuildUniformGrid(pts, dom, eps, UGOptions{}, noise.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	want := SuggestedUGSize(10000, eps, DefaultC) // sqrt(10000/10) ~ 32
	if got := ug.GridSize(); got != want {
		t.Errorf("GridSize = %d, want Guideline 1 value %d", got, want)
	}
	if ug.Epsilon() != eps {
		t.Errorf("Epsilon = %g, want %g", ug.Epsilon(), eps)
	}
}

func TestUGExplicitSizeOverridesGuideline(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(5, 1000, dom)
	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{GridSize: 7}, noise.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := ug.GridSize(); got != 7 {
		t.Errorf("GridSize = %d, want 7", got)
	}
}

func TestUGNoisyNEstimate(t *testing.T) {
	// With NBudgetFrac > 0 the pipeline is end-to-end DP; the chosen size
	// should still land near the true-N guideline for a large dataset.
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := uniformPoints(6, 50000, dom)
	ug, err := BuildUniformGrid(pts, dom, 1, UGOptions{NBudgetFrac: 0.02}, noise.NewSource(6))
	if err != nil {
		t.Fatal(err)
	}
	want := SuggestedUGSize(50000, 0.98, DefaultC)
	if got := ug.GridSize(); got < want-2 || got > want+2 {
		t.Errorf("GridSize with noisy N = %d, want within 2 of %d", got, want)
	}
}

func TestUGDeterministicGivenSeed(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	pts := clusteredPoints(7, 2000, dom)
	build := func() *UniformGrid {
		ug, err := BuildUniformGrid(pts, dom, 0.5, UGOptions{GridSize: 12}, noise.NewSource(99))
		if err != nil {
			t.Fatal(err)
		}
		return ug
	}
	a, b := build(), build()
	r := geom.NewRect(1.5, 2.5, 8.5, 9.5)
	if a.Query(r) != b.Query(r) {
		t.Error("same seed produced different synopses")
	}
}

func TestUGNoiseMagnitudeMatchesTheory(t *testing.T) {
	// Empty dataset: every noisy cell is pure Laplace noise with scale
	// 1/eps; the variance of the full-domain query over m^2 cells should
	// be about m^2 * 2/eps^2.
	dom := geom.MustDomain(0, 0, 1, 1)
	const eps = 0.5
	const m = 8
	const trials = 400
	var sumSq float64
	for i := 0; i < trials; i++ {
		ug, err := BuildUniformGrid(nil, dom, eps, UGOptions{GridSize: m}, noise.NewSource(int64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		v := ug.Query(geom.NewRect(0, 0, 1, 1))
		sumSq += v * v
	}
	got := sumSq / trials
	want := float64(m*m) * 2 / (eps * eps)
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("full-query noise variance = %g, want ~%g", got, want)
	}
}

func TestUGQueryOutsideDomain(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	ug, err := BuildUniformGrid(uniformPoints(8, 100, dom), dom, 1, UGOptions{GridSize: 4}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := ug.Query(geom.NewRect(20, 20, 30, 30)); got != 0 {
		t.Errorf("outside query = %g, want 0", got)
	}
}

func TestUGEmptyDataset(t *testing.T) {
	dom := geom.MustDomain(0, 0, 10, 10)
	ug, err := BuildUniformGrid(nil, dom, 1, UGOptions{}, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := ug.GridSize(); got != 1 {
		t.Errorf("empty-data grid size = %d, want 1", got)
	}
	if got := ug.Query(geom.NewRect(0, 0, 10, 10)); got != 0 {
		t.Errorf("empty-data query = %g, want 0", got)
	}
}
