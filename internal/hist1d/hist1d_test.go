package hist1d

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dpgrid/dpgrid/internal/noise"
)

func clustered1D(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, 0, n)
	for len(xs) < n {
		var x float64
		if rng.Intn(5) == 0 {
			x = rng.Float64() * 100
		} else if rng.Intn(2) == 0 {
			x = 20 + rng.NormFloat64()*3
		} else {
			x = 70 + rng.NormFloat64()*5
		}
		if x >= 0 && x <= 100 {
			xs = append(xs, x)
		}
	}
	return xs
}

func TestValidation(t *testing.T) {
	src := noise.NewSource(1)
	if _, err := BuildFlat(nil, 0, 100, 10, 1, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := BuildFlat(nil, 100, 0, 10, 1, src); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := BuildFlat(nil, 0, 100, 0, 1, src); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := BuildFlat(nil, 0, 100, 10, 0, src); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := BuildHierarchical(nil, 0, 100, 10, 2, 0, 1, src); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := BuildHierarchical(nil, 0, 100, 10, 1, 2, 1, src); err == nil {
		t.Error("branching 1 accepted")
	}
	if _, err := BuildHierarchical(nil, 0, 100, 10, 4, 3, 1, src); err == nil {
		t.Error("indivisible level sizes accepted")
	}
}

func TestFlatZeroNoiseExact(t *testing.T) {
	xs := clustered1D(2, 10000)
	h, err := BuildFlat(xs, 0, 100, 50, 1, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Total(); math.Abs(got-10000) > 1e-9 {
		t.Errorf("Total = %g, want 10000", got)
	}
	// Bin-aligned query is exact.
	var want float64
	for _, x := range xs {
		if x >= 20 && x <= 40 {
			want++
		}
	}
	got := h.Range(20, 40)
	// Boundary effects: points exactly at 40 belong to the bin starting
	// at 40; allow a tiny slack relative to the count.
	if math.Abs(got-want) > want*0.01+5 {
		t.Errorf("Query(20,40) = %g, want ~%g", got, want)
	}
}

func TestHierarchicalZeroNoiseExact(t *testing.T) {
	xs := clustered1D(3, 5000)
	h, err := BuildHierarchical(xs, 0, 100, 64, 2, 6, 1, noise.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Total(); math.Abs(got-5000) > 1e-6 {
		t.Errorf("Total = %g, want 5000", got)
	}
}

func TestQuerySemantics(t *testing.T) {
	h := newHist(0, 10, []float64{10, 20, 30, 40, 50})
	cases := []struct {
		a, b, want float64
	}{
		{0, 10, 150},  // everything
		{0, 2, 10},    // first bin
		{1, 3, 15},    // half of bin0 + half of bin1
		{-5, 15, 150}, // clipped
		{4, 4, 0},     // degenerate
		{20, 30, 0},   // outside
	}
	for _, tc := range cases {
		if got := h.Range(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Query(%g,%g) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
	// Reversed arguments normalize.
	if got := h.Range(3, 1); math.Abs(got-15) > 1e-9 {
		t.Errorf("reversed Query = %g, want 15", got)
	}
}

// TestHierarchyBeatsFlatIn1D is the package's reason to exist: for large
// 1D domains, the hierarchical method gives much lower range-query error
// than the flat histogram — the effect the paper says does NOT carry over
// to 2D.
func TestHierarchyBeatsFlatIn1D(t *testing.T) {
	// Note the domain size: hierarchy gains in 1D grow with the number of
	// bins (Hay et al.); at 64k bins and branching 16 the gain is
	// unambiguous, while small domains (~1k bins) only show ~1.2x — both
	// consistent with the paper's analysis that what matters is the ratio
	// of border cells to interior cells.
	xs := clustered1D(5, 100000)
	const bins = 65536 // 16^4
	const eps = 0.5
	rng := rand.New(rand.NewSource(5))

	// Truth histogram for evaluation.
	truth := newHist(0, 100, histogram(xs, 0, 100, bins))

	var flatErr, hierErr float64
	const trials = 3
	const queries = 200
	for trial := 0; trial < trials; trial++ {
		flat, err := BuildFlat(xs, 0, 100, bins, eps, noise.NewSource(int64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		hier, err := BuildHierarchical(xs, 0, 100, bins, 16, 5, eps, noise.NewSource(int64(200+trial)))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < queries; q++ {
			// Mid-to-large ranges, where hierarchy helps most.
			w := 20 + rng.Float64()*70
			a := rng.Float64() * (100 - w)
			want := truth.Range(a, a+w)
			flatErr += math.Abs(flat.Range(a, a+w) - want)
			hierErr += math.Abs(hier.Range(a, a+w) - want)
		}
	}
	gain := flatErr / hierErr
	if gain < 2 {
		t.Errorf("1D hierarchy gain = %.2fx, want >= 2x (flat err %g, hier err %g)",
			gain, flatErr, hierErr)
	}
	t.Logf("1D hierarchy gain: %.2fx", gain)
}

func TestHierarchicalDeterministic(t *testing.T) {
	xs := clustered1D(7, 2000)
	build := func() float64 {
		h, err := BuildHierarchical(xs, 0, 100, 32, 2, 4, 1, noise.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		return h.Range(13, 77)
	}
	if a, b := build(), build(); a != b {
		t.Errorf("same seed, different results: %g vs %g", a, b)
	}
}

func TestDepthOneEqualsFlat(t *testing.T) {
	xs := clustered1D(8, 1000)
	flat, err := BuildFlat(xs, 0, 100, 16, 1, noise.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := BuildHierarchical(xs, 0, 100, 16, 2, 1, 1, noise.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := flat.Range(10, 90), hier.Range(10, 90); a != b {
		t.Errorf("depth-1 hierarchy differs from flat: %g vs %g", a, b)
	}
}

func TestFromValuesAndExact(t *testing.T) {
	if _, err := FromValues(1, 0, []float64{1}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := FromValues(0, 1, nil); err == nil {
		t.Error("empty bins accepted")
	}
	h, err := FromValues(0, 10, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Total(); got != 6 {
		t.Errorf("Total = %g, want 6", got)
	}
	if got := h.Bins(); got != 3 {
		t.Errorf("Bins = %d, want 3", got)
	}
	// FromValues copies: mutating the input must not change the histogram.
	vals := []float64{5}
	h2, _ := FromValues(0, 1, vals)
	vals[0] = 99
	if h2.Total() != 5 {
		t.Error("FromValues aliases caller slice")
	}

	if _, err := Exact(nil, 5, 5, 4); err == nil {
		t.Error("Exact degenerate range accepted")
	}
	if _, err := Exact(nil, 0, 1, 0); err == nil {
		t.Error("Exact zero bins accepted")
	}
	he, err := Exact([]float64{0.5, 0.6, 7}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := he.Total(); got != 3 {
		t.Errorf("Exact Total = %g, want 3", got)
	}
}
