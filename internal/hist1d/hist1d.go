// Package hist1d implements one-dimensional differentially private
// histograms — flat (per-bin Laplace) and hierarchical with constrained
// inference (Hay et al., VLDB 2010). It exists to measure the paper's
// section IV-C claim empirically: binary hierarchies give large gains for
// 1D range queries, gains that mostly vanish in 2D and keep shrinking
// with dimension (see internal/grid3d and eval.HierarchyGainByDimension).
package hist1d

import (
	"errors"
	"fmt"
	"math"

	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/infer"
	"github.com/dpgrid/dpgrid/internal/noise"
)

// Hist is a 1D histogram over [lo, hi] with uniformity-estimate range
// queries (the 1D analogue of grid.Prefix). eps is the privacy budget
// the release spent; it is zero for exact histograms, which is also
// what marks them unserializable (see serialize.go).
type Hist struct {
	lo, hi float64
	eps    float64
	prefix []float64 // prefix[i] = sum of bins < i
}

// newHist wraps bin values into a queryable histogram.
func newHist(lo, hi float64, vals []float64) *Hist {
	prefix := make([]float64, len(vals)+1)
	for i, v := range vals {
		prefix[i+1] = prefix[i] + v
	}
	return &Hist{lo: lo, hi: hi, prefix: prefix}
}

// FromValues wraps existing bin values (e.g. exact counts used as ground
// truth in experiments) into a queryable histogram. It adds no noise and
// copies vals.
func FromValues(lo, hi float64, vals []float64) (*Hist, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("hist1d: invalid range [%g, %g]", lo, hi)
	}
	if len(vals) == 0 {
		return nil, errors.New("hist1d: no bins")
	}
	return newHist(lo, hi, append([]float64(nil), vals...)), nil
}

// Exact builds the exact (non-private) histogram of xs, for ground truth.
func Exact(xs []float64, lo, hi float64, bins int) (*Hist, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("hist1d: invalid range [%g, %g]", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("hist1d: bins must be positive, got %d", bins)
	}
	return newHist(lo, hi, histogram(xs, lo, hi, bins)), nil
}

// Bins returns the number of bins.
func (h *Hist) Bins() int { return len(h.prefix) - 1 }

// Total returns the sum of all bins.
func (h *Hist) Total() float64 { return h.prefix[len(h.prefix)-1] }

// Epsilon returns the privacy budget spent on the release, zero for
// exact (non-private) histograms.
func (h *Hist) Epsilon() float64 { return h.eps }

// Query estimates the count in the rectangle's x-extent: the histogram
// is an axis synopsis, so a 2D query projects onto it and the y-extent
// is ignored. This is what lets a Hist flow through every rect-query
// surface (the codec registry, dpserve) alongside the 2D kinds.
func (h *Hist) Query(r geom.Rect) float64 { return h.Range(r.MinX, r.MaxX) }

// Range estimates the count in [a, b] with fractional bin coverage.
func (h *Hist) Range(a, b float64) float64 {
	if b < a {
		a, b = b, a
	}
	a = math.Max(a, h.lo)
	b = math.Min(b, h.hi)
	if b <= a {
		return 0
	}
	n := float64(h.Bins())
	w := (h.hi - h.lo) / n
	la := (a - h.lo) / w
	lb := (b - h.lo) / w
	la = math.Min(math.Max(la, 0), n)
	lb = math.Min(math.Max(lb, 0), n)
	// Continuous prefix: interpolate within the boundary bins.
	return h.cumAt(lb) - h.cumAt(la)
}

// cumAt returns the uniformity-interpolated cumulative count at the
// continuous bin coordinate t in [0, bins].
func (h *Hist) cumAt(t float64) float64 {
	i := int(math.Floor(t))
	if i >= h.Bins() {
		return h.prefix[h.Bins()]
	}
	frac := t - float64(i)
	return h.prefix[i] + frac*(h.prefix[i+1]-h.prefix[i])
}

// histogram counts xs into bins over [lo, hi]; out-of-range values are
// dropped.
func histogram(xs []float64, lo, hi float64, bins int) []float64 {
	vals := make([]float64, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		vals[i]++
	}
	return vals
}

func validate(lo, hi float64, bins int, eps float64, src noise.Source) error {
	if src == nil {
		return errors.New("hist1d: nil noise source")
	}
	if !(hi > lo) {
		return fmt.Errorf("hist1d: invalid range [%g, %g]", lo, hi)
	}
	if bins < 1 {
		return fmt.Errorf("hist1d: bins must be positive, got %d", bins)
	}
	if !(eps > 0) {
		return fmt.Errorf("hist1d: epsilon must be positive, got %g", eps)
	}
	return nil
}

// BuildFlat releases a flat eps-DP histogram: every bin gets independent
// Lap(1/eps) noise (the 1D analogue of UG with a fixed grid size).
func BuildFlat(xs []float64, lo, hi float64, bins int, eps float64, src noise.Source) (*Hist, error) {
	if err := validate(lo, hi, bins, eps, src); err != nil {
		return nil, err
	}
	vals := histogram(xs, lo, hi, bins)
	mech, err := noise.NewMechanism(eps, 1, src)
	if err != nil {
		return nil, fmt.Errorf("hist1d: %w", err)
	}
	mech.PerturbAll(vals)
	h := newHist(lo, hi, vals)
	h.eps = eps
	return h, nil
}

// BuildHierarchical releases an eps-DP histogram through a b-ary
// hierarchy of the given depth (leaf level included) with eps/depth per
// level and constrained inference — Hay et al.'s method, which the
// paper's recursive-partitioning baselines generalize to 2D. bins must
// equal branching^(depth-1) * topBins for integer level sizes; topBins is
// inferred and must be >= 1.
func BuildHierarchical(xs []float64, lo, hi float64, bins, branching, depth int, eps float64, src noise.Source) (*Hist, error) {
	if err := validate(lo, hi, bins, eps, src); err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("hist1d: depth must be >= 1, got %d", depth)
	}
	if depth > 1 && branching < 2 {
		return nil, fmt.Errorf("hist1d: branching must be >= 2, got %d", branching)
	}

	// Level sizes, leaves first.
	sizes := make([]int, depth)
	sizes[0] = bins
	for l := 1; l < depth; l++ {
		if sizes[l-1]%branching != 0 {
			return nil, fmt.Errorf("hist1d: level size %d not divisible by branching %d", sizes[l-1], branching)
		}
		sizes[l] = sizes[l-1] / branching
		if sizes[l] < 1 {
			return nil, fmt.Errorf("hist1d: depth %d too deep for %d bins", depth, bins)
		}
	}

	// Exact counts per level.
	exact := make([][]float64, depth)
	exact[0] = histogram(xs, lo, hi, bins)
	for l := 1; l < depth; l++ {
		exact[l] = make([]float64, sizes[l])
		for i, v := range exact[l-1] {
			exact[l][i/branching] += v
		}
	}

	// Noise each level with eps/depth.
	perLevel := eps / float64(depth)
	variance := make([]float64, depth)
	for l := 0; l < depth; l++ {
		mech, err := noise.NewMechanism(perLevel, 1, src)
		if err != nil {
			return nil, fmt.Errorf("hist1d: %w", err)
		}
		mech.PerturbAll(exact[l])
		variance[l] = mech.Variance()
	}

	// Constrained inference over the forest (one tree per top-level bin).
	offsets := make([]int, depth)
	total := 0
	for l := 0; l < depth; l++ {
		offsets[l] = total
		total += sizes[l]
	}
	forest := &infer.Forest{Nodes: make([]infer.Node, total)}
	for l := 0; l < depth; l++ {
		for i := 0; i < sizes[l]; i++ {
			idx := offsets[l] + i
			forest.Nodes[idx].Count = exact[l][i]
			forest.Nodes[idx].Variance = variance[l]
			if l > 0 {
				children := make([]int, 0, branching)
				for c := 0; c < branching; c++ {
					children = append(children, offsets[l-1]+i*branching+c)
				}
				forest.Nodes[idx].Children = children
			}
		}
	}
	for i := 0; i < sizes[depth-1]; i++ {
		forest.Roots = append(forest.Roots, offsets[depth-1]+i)
	}
	est, err := forest.Infer()
	if err != nil {
		return nil, fmt.Errorf("hist1d: %w", err)
	}
	h := newHist(lo, hi, est[:bins])
	h.eps = eps
	return h, nil
}
