package hist1d

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/dpgrid/dpgrid/internal/codec"
	"github.com/dpgrid/dpgrid/internal/core"
)

// Serialization of 1D histograms. Both encodings persist the prefix-sum
// table — the in-memory query structure — for bit-identical round trips
// (the same copy-only decode pattern the 2D kinds use). Prefix sums of
// noisy bins are not monotonic (Laplace noise goes negative), so the
// structural checks are first-element-zero and finiteness, nothing
// stronger.
//
// Exact histograms (Exact, FromValues) carry epsilon zero and refuse to
// serialize: a release file is a privacy artifact, and writing raw
// counts through the same door would make them indistinguishable from
// private ones on disk.
//
// Binary layout (after the codec container header; little endian):
//
//	lo (f64) | hi (f64) | epsilon (f64) | bins (u32) |
//	prefix sums (length-prefixed f64 section, bins+1 entries)

const (
	// FormatHist1D tags serialized 1D histograms.
	FormatHist1D = "dpgrid/hist1d"
	// serializeVersion is bumped on breaking format changes.
	serializeVersion = 1

	// maxBins caps the bin count a file may demand, mirroring the grid
	// packages' cell cap: decode allocation is bounded by the file's own
	// size either way, but no sane release is finer than this.
	maxBins = 1 << 28
)

func init() {
	// No Validate hook: a 1D histogram has no 2D domain to cross-check
	// against a mosaic tile, so hist1d payloads are deliberately not
	// embeddable in sharded manifests.
	codec.Register(codec.Registration{
		Kind:       codec.KindHist1D,
		Name:       "hist1d",
		JSONFormat: FormatHist1D,
		DecodeBinary: func(data []byte) (codec.Synopsis, error) {
			return ParseHistBinary(data)
		},
		DecodeJSON: func(data []byte) (codec.Synopsis, error) {
			return ParseHist(data)
		},
	})
}

// ContainerKind reports the synopsis's container kind.
func (h *Hist) ContainerKind() codec.Kind { return codec.KindHist1D }

// checkSerializable rejects exact (epsilon-zero) histograms.
func (h *Hist) checkSerializable() error {
	if !(h.eps > 0) {
		return fmt.Errorf("hist1d: refusing to serialize a non-private histogram (epsilon %g)", h.eps)
	}
	return nil
}

// AppendBinary appends the histogram's dpgridv2 container to dst and
// returns the extended slice.
func (h *Hist) AppendBinary(dst []byte) ([]byte, error) {
	if err := h.checkSerializable(); err != nil {
		return nil, err
	}
	e := codec.NewEnc(dst, codec.KindHist1D)
	e.F64(h.lo)
	e.F64(h.hi)
	e.F64(h.eps)
	e.U32(uint32(h.Bins()))
	e.F64s(h.prefix)
	return e.Bytes(), nil
}

// histFile is the on-disk JSON form.
type histFile struct {
	core.Envelope
	Range   [2]float64 `json:"range"` // lo, hi
	Epsilon float64    `json:"epsilon"`
	Bins    int        `json:"bins"`
	Prefix  []float64  `json:"prefix"` // bins+1 prefix sums, prefix[0] == 0
}

// WriteTo serializes the histogram as JSON.
func (h *Hist) WriteTo(dst io.Writer) (int64, error) {
	if err := h.checkSerializable(); err != nil {
		return 0, err
	}
	f := histFile{
		Envelope: core.Envelope{Format: FormatHist1D, Version: serializeVersion},
		Range:    [2]float64{h.lo, h.hi},
		Epsilon:  h.eps,
		Bins:     h.Bins(),
		Prefix:   h.prefix,
	}
	data, err := json.Marshal(&f)
	if err != nil {
		return 0, fmt.Errorf("hist1d: marshal synopsis: %w", err)
	}
	data = append(data, '\n')
	n, err := dst.Write(data)
	return int64(n), err
}

// checkDecoded validates the shared invariants of both encodings.
func checkDecoded(lo, hi, eps float64, bins int, prefix []float64) error {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || !(hi > lo) {
		return fmt.Errorf("hist1d: invalid range [%g, %g]", lo, hi)
	}
	if !(eps > 0) {
		return fmt.Errorf("hist1d: invalid epsilon %g", eps)
	}
	if bins < 1 || bins > maxBins {
		return fmt.Errorf("hist1d: invalid bin count %d", bins)
	}
	if len(prefix) != bins+1 {
		return fmt.Errorf("hist1d: prefix length %d != bins+1 = %d", len(prefix), bins+1)
	}
	if prefix[0] != 0 {
		return fmt.Errorf("hist1d: prefix table must start at 0, got %g", prefix[0])
	}
	for i, v := range prefix {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("hist1d: non-finite prefix sum %g at index %d", v, i)
		}
	}
	return nil
}

// ParseHistBinary deserializes a hist1d dpgridv2 container, validating
// all structural invariants.
func ParseHistBinary(data []byte) (*Hist, error) {
	d, kind, err := codec.NewDec(data)
	if err != nil {
		return nil, fmt.Errorf("hist1d: parse synopsis: %w", err)
	}
	if kind != codec.KindHist1D {
		return nil, fmt.Errorf("hist1d: container kind %v is not %v", kind, codec.KindHist1D)
	}
	lo := d.F64()
	hi := d.F64()
	eps := d.F64()
	bins := d.Int32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("hist1d: parse synopsis: %w", err)
	}
	if bins < 0 || bins > maxBins {
		return nil, fmt.Errorf("hist1d: invalid bin count %d", bins)
	}
	prefix := d.F64s(bins + 1)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("hist1d: parse synopsis: %w", err)
	}
	if err := checkDecoded(lo, hi, eps, bins, prefix); err != nil {
		return nil, err
	}
	return &Hist{lo: lo, hi: hi, eps: eps, prefix: prefix}, nil
}

// ParseHist deserializes a JSON hist1d synopsis, validating all
// structural invariants.
func ParseHist(data []byte) (*Hist, error) {
	var f histFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("hist1d: parse synopsis: %w", err)
	}
	if f.Format != FormatHist1D {
		return nil, fmt.Errorf("hist1d: format %q is not %q", f.Format, FormatHist1D)
	}
	if f.Version != serializeVersion {
		return nil, fmt.Errorf("hist1d: unsupported version %d (have %d)", f.Version, serializeVersion)
	}
	if err := checkDecoded(f.Range[0], f.Range[1], f.Epsilon, f.Bins, f.Prefix); err != nil {
		return nil, err
	}
	return &Hist{lo: f.Range[0], hi: f.Range[1], eps: f.Epsilon, prefix: f.Prefix}, nil
}
