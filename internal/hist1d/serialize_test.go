package hist1d

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/dpgrid/dpgrid/internal/codec"
	"github.com/dpgrid/dpgrid/internal/geom"
	"github.com/dpgrid/dpgrid/internal/noise"
)

func testHist(t testing.TB) *Hist {
	t.Helper()
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i%97) + 0.5
	}
	h, err := BuildHierarchical(xs, 0, 100, 16, 2, 3, 1, noise.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBinaryRoundTripBitIdentical(t *testing.T) {
	h := testHist(t)
	data, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseHistBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bins() != h.Bins() || loaded.Epsilon() != h.Epsilon() {
		t.Fatalf("round trip changed shape: bins %d->%d eps %g->%g",
			h.Bins(), loaded.Bins(), h.Epsilon(), loaded.Epsilon())
	}
	for a := 0.0; a < 90; a += 7.3 {
		if x, y := h.Range(a, a+9), loaded.Range(a, a+9); x != y {
			t.Errorf("Range(%g, %g) changed across round trip: %g vs %g", a, a+9, x, y)
		}
	}
	again, err := loaded.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-encoding not bit-identical")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := testHist(t)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ParseHist(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if x, y := h.Range(3, 77), loaded.Range(3, 77); x != y {
		t.Errorf("Range changed across JSON round trip: %g vs %g", x, y)
	}
}

func TestRectQueryProjectsOntoAxis(t *testing.T) {
	h := testHist(t)
	r := geom.Rect{MinX: 10, MinY: -5, MaxX: 40, MaxY: 99}
	if got, want := h.Query(r), h.Range(10, 40); got != want {
		t.Errorf("Query(%v) = %g, want Range(10,40) = %g", r, got, want)
	}
}

// TestExactHistogramRefusesToSerialize: exact counts must never leave
// the process through the release-file door.
func TestExactHistogramRefusesToSerialize(t *testing.T) {
	h, err := Exact([]float64{1, 2, 3}, 0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AppendBinary(nil); err == nil {
		t.Error("AppendBinary accepted an exact histogram")
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err == nil {
		t.Error("WriteTo accepted an exact histogram")
	}
}

func TestParseHistBinaryRejectsCorrupt(t *testing.T) {
	valid, err := testHist(t).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly, never panic.
	for n := 0; n < len(valid); n += 7 {
		if _, err := ParseHistBinary(valid[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	mutate := func(f func(e *codec.Enc)) []byte {
		e := codec.NewEnc(nil, codec.KindHist1D)
		f(e)
		return e.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"trailing bytes", append(bytes.Clone(valid), 0), "trailing"},
		{"wrong kind", func() []byte {
			e := codec.NewEnc(nil, codec.KindUniform)
			return e.Bytes()
		}(), "kind"},
		{"inverted range", mutate(func(e *codec.Enc) {
			e.F64(10)
			e.F64(0)
			e.F64(1)
			e.U32(1)
			e.F64s([]float64{0, 1})
		}), "invalid range"},
		{"zero epsilon", mutate(func(e *codec.Enc) {
			e.F64(0)
			e.F64(10)
			e.F64(0)
			e.U32(1)
			e.F64s([]float64{0, 1})
		}), "epsilon"},
		{"zero bins", mutate(func(e *codec.Enc) {
			e.F64(0)
			e.F64(10)
			e.F64(1)
			e.U32(0)
			e.F64s([]float64{0})
		}), "bin count"},
		{"section length mismatch", mutate(func(e *codec.Enc) {
			e.F64(0)
			e.F64(10)
			e.F64(1)
			e.U32(3)
			e.F64s([]float64{0, 1})
		}), "float64s"},
		{"nonzero prefix start", mutate(func(e *codec.Enc) {
			e.F64(0)
			e.F64(10)
			e.F64(1)
			e.U32(1)
			e.F64s([]float64{5, 6})
		}), "start at 0"},
		{"non-finite prefix sum", mutate(func(e *codec.Enc) {
			e.F64(0)
			e.F64(10)
			e.F64(1)
			e.U32(2)
			e.F64s([]float64{0, math.NaN(), 3})
		}), "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseHistBinary(tc.data)
			if err == nil {
				t.Fatal("corrupt container accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRegistryDecodesHist1D(t *testing.T) {
	reg, ok := codec.Lookup(codec.KindHist1D)
	if !ok {
		t.Fatal("hist1d kind not registered")
	}
	if reg.Name != "hist1d" || reg.JSONFormat != FormatHist1D {
		t.Fatalf("registration = %+v", reg)
	}
	if reg.Embeddable() {
		t.Error("hist1d must not be embeddable in 2D mosaics")
	}
	h := testHist(t)
	data, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := reg.DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	r := geom.Rect{MinX: 5, MaxX: 60, MinY: 0, MaxY: 1}
	if got, want := s.Query(r), h.Query(r); got != want {
		t.Errorf("registry decode answers %g, want %g", got, want)
	}
}
