// Package driver runs an analyzer suite over a module and renders the
// findings. It is the engine behind cmd/dplint's standalone mode and the
// repo-clean meta-test.
package driver

import (
	"fmt"
	"go/token"
	"io"
	"sort"

	"github.com/dpgrid/dpgrid/internal/analysis"
	"github.com/dpgrid/dpgrid/internal/analysis/load"
)

// Finding is one rendered diagnostic.
type Finding struct {
	Position token.Position
	Code     string
	Message  string
	Package  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Code, f.Message)
}

// Run loads the packages matched by patterns in moduleDir, applies every
// analyzer, filters suppressed diagnostics, and returns the surviving
// findings sorted by file position.
func Run(moduleDir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.ImportPath, pkg.RelPath)
			if err != nil {
				return nil, err
			}
			diags = analysis.Filter(pkg.Fset, pkg.Files, diags)
			for _, d := range diags {
				findings = append(findings, Finding{
					Position: pkg.Fset.Position(d.Pos),
					Code:     d.Code,
					Message:  d.Message,
					Package:  pkg.ImportPath,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Code < findings[j].Code
	})
	return findings, nil
}

// Render writes findings one per line in the conventional
// file:line:col: CODE: message format.
func Render(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
