package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives let a human override a checker where the code
// is right and the rule is wrong, with an auditable reason:
//
//	//lint:ignore DPL001 seeding is documented as deterministic here
//	//lint:ignore DPL001,DPL004 one reason covering both codes
//	//lint:file-ignore DPL002 this whole file is generated
//
// An ignore directive suppresses matching diagnostics on its own line
// and on the line immediately below it (so it works both as a trailing
// comment and as a comment line above the offending statement). A
// file-ignore directive suppresses matching diagnostics anywhere in its
// file. A directive with no reason text is inert: the reason is the
// audit trail, so omitting it keeps the diagnostic alive.

type suppression struct {
	codes map[string]bool
	file  string
	line  int  // 0 for file-wide
	wide  bool // file-ignore
}

func parseDirective(fset *token.FileSet, c *ast.Comment) (suppression, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	var wide bool
	switch {
	case strings.HasPrefix(text, "lint:ignore "):
		text = strings.TrimPrefix(text, "lint:ignore ")
	case strings.HasPrefix(text, "lint:file-ignore "):
		text = strings.TrimPrefix(text, "lint:file-ignore ")
		wide = true
	default:
		return suppression{}, false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		// Codes but no reason, or nothing at all: inert.
		return suppression{}, false
	}
	codes := map[string]bool{}
	for _, code := range strings.Split(fields[0], ",") {
		if code != "" {
			codes[code] = true
		}
	}
	if len(codes) == 0 {
		return suppression{}, false
	}
	pos := fset.Position(c.Pos())
	return suppression{codes: codes, file: pos.Filename, line: pos.Line, wide: wide}, true
}

// collectSuppressions walks every comment in files and returns the
// active directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var sups []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if s, ok := parseDirective(fset, c); ok {
					sups = append(sups, s)
				}
			}
		}
	}
	return sups
}

// Filter removes diagnostics covered by lint:ignore / lint:file-ignore
// directives found in files. It is the single suppression implementation
// shared by the dplint driver and the analysistest harness, so fixtures
// exercise exactly the production behavior.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	sups := collectSuppressions(fset, files)
	if len(sups) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, s := range sups {
			if !s.codes[d.Code] || s.file != pos.Filename {
				continue
			}
			if s.wide || s.line == pos.Line || s.line+1 == pos.Line {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// PosOf is a convenience for analyzers that report on a node.
func PosOf(n ast.Node) token.Pos { return n.Pos() }
