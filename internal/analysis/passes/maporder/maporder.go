// Package maporder implements dplint's DPL002 check: iteration over a
// Go map is randomized per run, so a range-over-map body that
// accumulates floating-point values, collects map values into a slice,
// or feeds the wire codec makes the program's observable output depend
// on that random order. Float addition is not associative, appended
// values land in random positions, and codec sections are
// order-sensitive by design — all three break the repo's
// byte-reproducibility guarantee. The sanctioned idiom is to collect the
// keys, sort them, and iterate the sorted slice.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/dpgrid/dpgrid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Code: "DPL002",
	Doc: "flag range-over-map bodies that accumulate floats, append map values, " +
		"or call into internal/codec; iterate sorted keys instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rng)
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, rng *ast.RangeStmt) {
	valueObj := identObj(pass, rng.Value)
	mapObj := identObj(pass, rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass, lhs) {
						pass.Reportf(n.Pos(), "float accumulation inside range over map: "+
							"iteration order is random, and float addition is not associative")
						return true
					}
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) {
				for _, arg := range n.Args[1:] {
					if mentionsObj(pass, arg, valueObj) || indexesMap(pass, arg, mapObj) {
						pass.Reportf(n.Pos(), "append of map values inside range over map: "+
							"elements land in random order; collect and sort keys first")
						return true
					}
				}
			}
			if callee := calleeFunc(pass, n); callee != nil &&
				callee.Pkg() != nil && callee.Pkg().Name() == "codec" {
				pass.Reportf(n.Pos(), "call into internal/codec inside range over map: "+
					"wire sections are order-sensitive; encode from sorted keys")
			}
		}
		return true
	})
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func mentionsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// indexesMap reports whether e contains an index expression over the
// ranged map itself (m[k] inside `for k := range m`), which reads map
// values just as directly as the value variable does.
func indexesMap(pass *analysis.Pass, e ast.Expr, mapObj types.Object) bool {
	if mapObj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok && pass.Info.Uses[id] == mapObj {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
