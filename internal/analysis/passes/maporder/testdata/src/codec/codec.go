// Package codec is a stub of internal/codec for maporder fixtures: the
// analyzer recognizes callees by package name.
package codec

// Enc stands in for the real wire encoder.
type Enc struct{ sum float64 }

// F64 appends one value to the (order-sensitive) section.
func (e *Enc) F64(v float64) { e.sum += v }

// Put is a package-level entry point into the codec.
func Put(v float64) { _ = v }
