// Package m is the maporder fixture: range-over-map bodies whose effect
// depends on iteration order.
package m

import (
	"sort"

	"codec"
)

func accumulate(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `DPL002: float accumulation inside range over map`
	}
	return total
}

func appendValues(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want `DPL002: append of map values inside range over map`
	}
	for k := range m {
		vals = append(vals, m[k]) // want `DPL002: append of map values inside range over map`
	}
	return vals
}

func encode(m map[string]float64, e *codec.Enc) {
	for _, v := range m {
		e.F64(v) // want `DPL002: call into internal/codec inside range over map`
	}
}

// sortedIdiom is the sanctioned pattern: collect keys, sort, iterate the
// slice. Appending keys is allowed; the later range is over a slice.
func sortedIdiom(m map[string]float64, e *codec.Enc) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.F64(m[k])
	}
}

// intCount is order-insensitive: integer addition commutes exactly.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressed(m map[string]float64) {
	for _, v := range m {
		//lint:ignore DPL002 fixture: sink is order-insensitive by contract
		codec.Put(v)
	}
}
