package maporder_test

import (
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis/analysistest"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "m")
}
