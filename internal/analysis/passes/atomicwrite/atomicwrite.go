// Package atomicwrite implements dplint's DPL004 check: files must be
// published through internal/atomicfile (write to a staging file, sync,
// rename), never with os.Create or os.WriteFile directly. A direct
// write that dies mid-way leaves a truncated synopsis, manifest, or
// BENCH_*.json on disk that readers then parse as real data; rename is
// the only publish primitive that is atomic on POSIX filesystems. The
// internal/atomicfile package itself is exempt (it is the
// implementation), as are tests.
package atomicwrite

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/dpgrid/dpgrid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Code: "DPL004",
	Doc: "forbid direct os.Create/os.WriteFile outside internal/atomicfile; " +
		"publish files via the atomic write-rename helper",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if strings.HasPrefix(pass.RelPath, "internal/atomicfile") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "os" {
				return true
			}
			switch sel.Sel.Name {
			case "Create", "WriteFile":
				pass.Reportf(call.Pos(), "direct os.%s can leave a half-written file on crash: "+
					"publish through internal/atomicfile (write-sync-rename)", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
