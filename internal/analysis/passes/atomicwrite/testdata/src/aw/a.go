// Package aw is the atomicwrite fixture.
package aw

import "os"

func dump(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `DPL004: direct os.WriteFile`
		return err
	}
	f, err := os.Create(path) // want `DPL004: direct os.Create`
	if err != nil {
		return err
	}
	return f.Close()
}

// Reading is not publishing: os.Open and friends are fine.
func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func scratch(path string) {
	//lint:ignore DPL004 fixture: scratch file, a torn write is acceptable here
	_ = os.WriteFile(path, nil, 0o600)
}
