// Package atomicfile mirrors the real helper's path: the implementation
// of the atomic writer is the one place allowed to touch os directly.
package atomicfile

import "os"

func stage(path string) (*os.File, error) {
	return os.Create(path)
}
