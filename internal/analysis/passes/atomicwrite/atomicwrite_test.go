package atomicwrite_test

import (
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis/analysistest"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/atomicwrite"
)

func TestAtomicwrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicwrite.Analyzer, "aw", "internal/atomicfile")
}
