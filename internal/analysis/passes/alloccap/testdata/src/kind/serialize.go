// serialize.go carries kind's decode path: alloccap watches files with
// this name in every package.
package kind

import codec "internal/codec"

type payload struct {
	vals  []float64
	m1    int
	cells []int
}

func parse(d *codec.Dec) *payload {
	n := d.Int32()
	return &payload{vals: make([]float64, n)} // want `DPL005: make length n is wire-derived and unbounded`
}

func parseBounded(d *codec.Dec) []float64 {
	n := d.Len(8)
	return make([]float64, n)
}

// parseField mirrors core/serialize.go's f.M1*f.M1 pattern: a product of
// struct fields is fine once an early-exit guard has inspected it.
func parseField(d *codec.Dec, p *payload) []int {
	_ = d.Int32()
	if len(p.cells) != p.m1*p.m1 {
		return nil
	}
	return make([]int, p.m1*p.m1)
}

func parseFieldBlind(d *codec.Dec, p *payload) []int {
	_ = d.Int32()
	return make([]int, p.m1*p.m1) // want `DPL005: make length p.m1\*p.m1 is wire-derived and unbounded`
}
