// Package codec is the alloccap fixture: a stub of the real bounded
// cursor plus decode functions exercising every bounding idiom.
package codec

// Dec is the truncation-safe cursor stand-in.
type Dec struct {
	buf []byte
	off int
}

// Remaining reports the unread byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Int32 reads an unvalidated wire integer.
func (d *Dec) Int32() int {
	d.off += 4
	return d.off
}

// Len reads a section length and validates it against Remaining.
func (d *Dec) Len(elemSize int) int {
	n := d.Int32()
	if n > d.Remaining()/elemSize {
		return 0
	}
	return n
}

// RawF64s validates want against the actual section and returns bytes.
func (d *Dec) RawF64s(want int) []byte {
	n := d.Len(8)
	if n != want {
		return nil
	}
	return d.buf[:8*n]
}

func decodeBlind(d *Dec) []byte {
	n := d.Int32()
	return make([]byte, n) // want `DPL005: make length n is wire-derived and unbounded`
}

func decodeBlindCap(d *Dec) []byte {
	n := d.Int32()
	return make([]byte, 0, n) // want `DPL005: make length n is wire-derived and unbounded`
}

func decodeBounded(d *Dec) []float64 {
	n := d.Len(8)
	return make([]float64, n)
}

func decodeGuarded(d *Dec) []int {
	n := d.Int32()
	if n > d.Remaining()/4 {
		return nil
	}
	return make([]int, n)
}

func decodeCrossChecked(d *Dec, want int) []float64 {
	raw := d.RawF64s(want)
	if raw == nil {
		return nil
	}
	return make([]float64, want)
}

func decodeFromLen(d *Dec, xs []int) []int {
	_ = d.Int32()
	return make([]int, len(xs))
}

// encodeSide never touches a Dec: sizes come from trusted in-memory
// state, so nothing here is flagged.
func encodeSide(vals []float64, m int) []float64 {
	out := make([]float64, m*m)
	copy(out, vals)
	return out
}

func suppressedBlind(d *Dec) []byte {
	n := d.Int32()
	//lint:ignore DPL005 fixture: n is bounded by the caller's contract
	return make([]byte, n)
}
