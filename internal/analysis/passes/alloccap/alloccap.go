// Package alloccap implements dplint's DPL005 check: in decode paths —
// internal/codec and the per-kind serialize.go files — a slice
// allocation whose length comes off the wire must be bounded before the
// make. `make([]T, n)` with an attacker-controlled n is an OOM primitive
// against the server: a 12-byte synopsis file claiming 2^40 nodes must
// fail validation, not allocate.
//
// The check fires only inside functions that touch a codec.Dec (encode
// paths build from trusted in-memory state). A length expression is
// accepted when it is a constant, derives from len/cap, comes from the
// bounded cursor (Dec.Len validates the claimed count against the bytes
// actually remaining; Dec.RawF64s/F64s cross-check their argument), or
// is guarded by an early-exit branch that inspects it before the make.
package alloccap

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/dpgrid/dpgrid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "alloccap",
	Code: "DPL005",
	Doc: "in decode paths (internal/codec, serialize.go files), require wire-derived " +
		"make lengths to be bounded via Dec.Len/RawF64s or an explicit guard",
	Run: run,
}

// boundedDecMethods validate their count against the remaining input.
var boundedDecMethods = map[string]bool{"Len": true, "RawF64s": true, "F64s": true}

func run(pass *analysis.Pass) error {
	codecPkg := strings.HasPrefix(pass.RelPath, "internal/codec")
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !codecPkg && name != "serialize.go" && name != "binary.go" {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !usesDec(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// usesDec reports whether the function touches a codec.Dec (receiver,
// parameter, or any referenced value) — the marker of a decode path.
func usesDec(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil && obj.Type() != nil && isDecType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

func isDecType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Dec" && obj.Pkg() != nil && obj.Pkg().Name() == "codec"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) < 2 {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		tv, ok := pass.Info.Types[call.Args[0]]
		if !ok {
			return true
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return true
		}
		for _, sizeArg := range call.Args[1:] {
			if !safeSize(pass, fd, sizeArg, call.Pos()) {
				pass.Reportf(call.Pos(), "make length %s is wire-derived and unbounded: "+
					"validate it with Dec.Len or check it against Remaining before allocating",
					exprString(sizeArg))
				break
			}
		}
		return true
	})
}

func safeSize(pass *analysis.Pass, fd *ast.FuncDecl, e ast.Expr, at token.Pos) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return safeSize(pass, fd, e.X, at)
	case *ast.BinaryExpr:
		return safeSize(pass, fd, e.X, at) && safeSize(pass, fd, e.Y, at)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		// A direct make(..., d.Len(k)) is bounded by construction.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && boundedDecMethods[sel.Sel.Name] {
			return true
		}
		return false
	case *ast.Ident, *ast.SelectorExpr:
		obj := sizeObj(pass, e)
		if obj == nil {
			return false
		}
		return boundedBefore(pass, fd, obj, at)
	default:
		return false
	}
}

func sizeObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := pass.Info.Uses[e]; o != nil {
			return o
		}
		return pass.Info.Defs[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

// boundedBefore reports whether obj is validated somewhere before the
// make at pos `at`: assigned from a bounded Dec method or len/cap,
// passed into a bounded Dec method (which cross-checks it), or inspected
// by an early-exit if statement.
func boundedBefore(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, at token.Pos) bool {
	bounded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bounded || n == nil || n.Pos() >= at {
			return !bounded
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if sizeObj(pass, lhs) != obj || i >= len(n.Rhs) {
					continue
				}
				if rhsBounded(pass, n.Rhs[i]) {
					bounded = true
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !boundedDecMethods[sel.Sel.Name] {
				return true
			}
			for _, arg := range n.Args {
				if sizeObj(pass, arg) == obj {
					bounded = true
				}
			}
		case *ast.IfStmt:
			if n.Body != nil && exitsEarly(n.Body) && mentions(pass, n.Cond, obj) {
				bounded = true
			}
		}
		return !bounded
	})
	return bounded
}

func rhsBounded(pass *analysis.Pass, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return boundedDecMethods[fun.Sel.Name]
	case *ast.Ident:
		if fun.Name == "len" || fun.Name == "cap" {
			_, isBuiltin := pass.Info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

func exitsEarly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.CallExpr:
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func mentions(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "<expr>"
	}
}
