package alloccap_test

import (
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis/analysistest"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/alloccap"
)

func TestAlloccap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), alloccap.Analyzer, "internal/codec", "kind")
}
