package noisedet_test

import (
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis/analysistest"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/noisedet"
)

func TestNoisedet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noisedet.Analyzer, "a", "cmd/tool")
}
