// Package noisedet implements dplint's DPL001 check: library packages
// must not reach for ambient nondeterminism.
//
// Every random draw in the library flows through internal/noise.Source
// so that builds are reproducible and the privacy accounting can be
// audited against a fixed noise transcript; wall-clock and process state
// are equally off-limits because they leak into released synopses and
// break replay. Commands (cmd/*), examples, dev tooling
// (internal/tools), the serving layer (internal/cluster, which needs
// real deadlines), the synthetic dataset generators (internal/datasets)
// and plotting are out of scope, as are all _test.go files.
package noisedet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/dpgrid/dpgrid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noisedet",
	Code: "DPL001",
	Doc: "forbid math/rand, crypto/rand, time.Now and os.Getpid in library packages; " +
		"randomness must flow through internal/noise sources so runs reproduce",
	Run: run,
}

var skipPrefixes = []string{
	"cmd/",
	"examples/",
	"internal/tools",
	"internal/cluster",
	"internal/datasets",
	"internal/plot",
}

var forbiddenImports = map[string]string{
	"math/rand":    "seed an internal/noise.Source instead",
	"math/rand/v2": "seed an internal/noise.Source instead",
	"crypto/rand":  "implement noise.Source over it in the caller, not in the library",
}

func inScope(rel string) bool {
	for _, p := range skipPrefixes {
		if strings.HasPrefix(rel, p) {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.RelPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, ok := forbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in a library package: %s", path, hint)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch {
			case pn.Imported().Path() == "time" && sel.Sel.Name == "Now":
				pass.Reportf(call.Pos(), "call to time.Now in a library package: inject a clock or take timestamps in cmd/")
			case pn.Imported().Path() == "os" && sel.Sel.Name == "Getpid":
				pass.Reportf(call.Pos(), "call to os.Getpid in a library package: process identity must not influence library output")
			}
			return true
		})
	}
	return nil
}
