// Command tool is a noisedet fixture under cmd/: commands may read the
// clock and seed from entropy, so nothing here is flagged.
package main

import (
	"math/rand"
	"time"
)

func main() {
	_ = time.Now()
	_ = rand.Int()
}
