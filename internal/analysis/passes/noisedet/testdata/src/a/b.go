//lint:file-ignore DPL001 fixture: this file exercises the file-wide directive
package a

import "time"

func fileWideOne() time.Time { return time.Now() }

func fileWideTwo() time.Time { return time.Now() }
