// Package a is a noisedet fixture standing in for a library package
// (its path has no cmd/ or examples/ prefix, so it is in scope).
package a

import (
	crand "crypto/rand" // want `DPL001: import of crypto/rand`
	"math/rand"         // want `DPL001: import of math/rand`
	"os"
	"time"
)

func draw() float64 {
	_ = os.Getpid() // want `DPL001: call to os.Getpid`
	_ = time.Now()  // want `DPL001: call to time.Now`
	return rand.Float64()
}

func read(b []byte) {
	_, _ = crand.Read(b)
}

func suppressed() time.Time {
	//lint:ignore DPL001 fixture: a documented reason keeps this call silent
	return time.Now()
}

func trailing() time.Time {
	return time.Now() //lint:ignore DPL001 fixture: trailing-comment form
}
