// Package other is outside ctxflow's serving-path scope: the same
// construct draws no diagnostic here.
package other

import "context"

func handle(ctx context.Context) context.Context {
	_ = ctx
	return context.Background()
}
