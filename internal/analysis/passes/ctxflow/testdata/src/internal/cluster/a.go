// Package cluster is the ctxflow fixture: its path matches the
// analyzer's serving-path scope.
package cluster

import "context"

func handle(ctx context.Context) {
	_ = ctx
	c := context.Background() // want `DPL003: context.Background below a function that receives a ctx`
	_ = c
	t := context.TODO() // want `DPL003: context.TODO below a function that receives a ctx`
	_ = t
}

// closures capture the enclosing ctx, so a fresh root inside one is
// still a flow break.
func fanOut(ctx context.Context, fns []func(context.Context)) {
	for _, fn := range fns {
		go func(f func(context.Context)) {
			f(context.Background()) // want `DPL003: context.Background below a function that receives a ctx`
		}(fn)
	}
	_ = ctx
}

// boot has no inbound ctx: creating the root here is the correct place.
func boot() context.Context {
	return context.Background()
}

func reconcile(ctx context.Context) context.Context {
	_ = ctx
	//lint:ignore DPL003 fixture: deliberately detached background reconciler
	return context.Background()
}
