package ctxflow_test

import (
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis/analysistest"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "internal/cluster", "other")
}
