// Package ctxflow implements dplint's DPL003 check, scoped to the
// serving path (cmd/dpserve and internal/cluster): a function that
// already receives a context.Context must not manufacture a fresh root
// with context.Background() or context.TODO(). Doing so detaches the
// work from the caller's deadline and cancellation, which is exactly how
// scatter-gather fan-outs leak goroutines and ignore client timeouts
// under partial degradation. Thread the ctx you were given; if you
// genuinely need detachment (a background reconciler spawned from a
// request), suppress with a reason.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/dpgrid/dpgrid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Code: "DPL003",
	Doc: "in cmd/dpserve and internal/cluster, forbid context.Background/TODO inside " +
		"functions that already receive a context; thread the caller's ctx",
	Run: run,
}

func inScope(rel string) bool {
	return rel == "cmd/dpserve" || rel == "internal/cluster" ||
		strings.HasPrefix(rel, "cmd/dpserve/") || strings.HasPrefix(rel, "internal/cluster/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.RelPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, hasCtxParam(pass, fd.Type))
		}
	}
	return nil
}

// checkFunc flags fresh root contexts in body. ctxAvail is true when
// this function or any enclosing one receives a context.Context —
// closures capture the enclosing ctx, so availability is inherited.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, ctxAvail bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Body, ctxAvail || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			if name := rootCtxCall(pass, n); name != "" && ctxAvail {
				pass.Reportf(n.Pos(), "context.%s below a function that receives a ctx: "+
					"thread the caller's context so deadlines and cancellation propagate", name)
			}
		}
		return true
	})
}

func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}

func rootCtxCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name
	}
	return ""
}
