// Package analysistest runs an analyzer over fixture packages and
// checks its findings against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := rand.Float64() // want `DPL001: .*math/rand`
//
// A `// want` comment carries one or more quoted regular expressions;
// each must match a diagnostic reported on that line (rendered as
// "CODE: message"). Diagnostics with no matching want, and wants with no
// matching diagnostic, fail the test. Suppression directives are applied
// before matching via the same analysis.Filter the dplint driver uses,
// so fixtures can also pin the suppression behavior:
//
//	y := rand.Float64() //lint:ignore DPL001 fixture: suppressed negative
//
// Fixtures live in testdata/src/<importpath>/ (GOPATH-style). They may
// import the standard library (resolved through compiled export data)
// and each other (resolved from source).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis"
	"github.com/dpgrid/dpgrid/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run analyzes each fixture package under testdata/src and verifies the
// filtered diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			pkg, err := l.check(path)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.Run(a, l.fset, pkg.files, pkg.types, pkg.info, path, path)
			if err != nil {
				t.Fatal(err)
			}
			diags = analysis.Filter(l.fset, pkg.files, diags)
			match(t, l.fset, pkg.files, diags)
		})
	}
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	testdata string
	fset     *token.FileSet
	parsed   map[string][]*ast.File
	checked  map[string]*fixturePkg
	exports  map[string]string
	gc       types.Importer
}

func newLoader(testdata string) *loader {
	return &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		parsed:   map[string][]*ast.File{},
		checked:  map[string]*fixturePkg{},
	}
}

func (l *loader) fixtureDir(path string) (string, bool) {
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	st, err := os.Stat(dir)
	return dir, err == nil && st.IsDir()
}

func (l *loader) parse(path string) ([]*ast.File, error) {
	if fs, ok := l.parsed[path]; ok {
		return fs, nil
	}
	dir, ok := l.fixtureDir(path)
	if !ok {
		return nil, fmt.Errorf("analysistest: no fixture package %q under %s/src", path, l.testdata)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysistest: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: fixture package %q has no Go files", path)
	}
	l.parsed[path] = files
	return files, nil
}

// externalImports walks the fixture import graph from roots and returns
// every import that is not itself a fixture (i.e. must come from
// compiled export data).
func (l *loader) externalImports(roots []string) ([]string, error) {
	seen := map[string]bool{}
	external := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		files, err := l.parse(path)
		if err != nil {
			return err
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if _, ok := l.fixtureDir(p); ok {
					if err := visit(p); err != nil {
						return err
					}
				} else {
					external[p] = true
				}
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	var out []string
	for p := range external {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

func (l *loader) ensureImporter(root string) error {
	if l.gc != nil {
		// Export data was resolved for an earlier root; extend it if
		// this root needs packages we have not seen.
		ext, err := l.externalImports([]string{root})
		if err != nil {
			return err
		}
		var missing []string
		for _, p := range ext {
			if _, ok := l.exports[p]; !ok {
				missing = append(missing, p)
			}
		}
		if len(missing) == 0 {
			return nil
		}
		more, err := load.StdExports(missing...)
		if err != nil {
			return err
		}
		for k, v := range more {
			l.exports[k] = v
		}
		return nil
	}
	ext, err := l.externalImports([]string{root})
	if err != nil {
		return err
	}
	l.exports = map[string]string{}
	if len(ext) > 0 {
		l.exports, err = load.StdExports(ext...)
		if err != nil {
			return err
		}
	}
	l.gc = load.NewImporter(l.fset, func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysistest: no export data for %q", path)
		}
		return os.Open(f)
	})
	return nil
}

// Import implements types.Importer: fixture packages from source,
// everything else from export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.fixtureDir(path); ok {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.gc.Import(path)
}

func (l *loader) check(path string) (*fixturePkg, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if err := l.ensureImporter(path); err != nil {
		return nil, err
	}
	files, err := l.parse(path)
	if err != nil {
		return nil, err
	}
	info := load.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: typecheck %s: %w", path, err)
	}
	p := &fixturePkg{files: files, types: tpkg, info: info}
	l.checked[path] = p
	return p, nil
}

// want expectation matching ----------------------------------------------

type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var wantRe = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "want ")
				ms := wantRe.FindAllString(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment (no quoted pattern): %s", pos, c.Text)
				}
				for _, m := range ms {
					var pat string
					if m[0] == '`' {
						pat = strings.Trim(m, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, m, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	used := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		msg := d.Code + ": " + d.Message
		matched := false
		for i, w := range wants {
			if used[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(msg) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, msg)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
