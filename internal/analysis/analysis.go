// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that dplint's checkers are
// written against. The repo builds offline (no module proxy), so rather
// than vendoring x/tools we provide the three concepts the checkers
// need: an Analyzer (a named check with a stable diagnostic code), a
// Pass (one type-checked package presented to a check), and Diagnostics
// (findings that the driver renders and the suppression layer filters).
//
// Analyzers are pure functions of a Pass: they may not write files,
// mutate globals, or depend on process state, so the same package always
// yields the same findings — the property dplint itself enforces on the
// rest of the repo.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short command-line name, e.g. "noisedet".
	Name string
	// Code is the stable diagnostic code, e.g. "DPL001". Every
	// diagnostic an analyzer reports carries this code; suppression
	// comments reference it.
	Code string
	// Doc is the full help text: what the check enforces and why.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test Go files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// ImportPath is the package's import path as the build system
	// knows it (fixture paths in tests, real paths under the driver).
	ImportPath string
	// RelPath is the package directory relative to the module root
	// ("" for the root package, "internal/query", "cmd/dpserve", ...).
	// Analyzers use it for scope decisions; fixture packages loaded by
	// analysistest present their fixture import path here so scope
	// logic can be exercised under test.
	RelPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos. The message should name the
// offending construct and the invariant it violates; the driver prefixes
// the analyzer's Code.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     pos,
		Code:    p.Analyzer.Code,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Code    string
	Message string
}

// Run executes a single analyzer over a package and returns the raw
// (unsuppressed) diagnostics. Callers layer Filter on top to honor
// lint:ignore directives.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath, relPath string) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ImportPath: importPath,
		RelPath:    relPath,
		report:     func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, nil
}
