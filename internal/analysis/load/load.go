// Package load type-checks the repo's packages for dplint without
// golang.org/x/tools. It shells out to `go list -e -export -deps -json`,
// which compiles dependencies and reports the path of each package's gc
// export data; target packages are then parsed from source and checked
// with go/types using an importer that reads that export data. This
// works fully offline — it needs only the go toolchain and the build
// cache, never the module proxy.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	// RelPath is the package directory relative to the module root
	// ("" for the module root package itself).
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

type listModule struct {
	Path string
}

type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *listModule
	Error      *struct{ Err string }
}

// Load lists patterns in moduleDir and returns every matched (non-dep)
// package, parsed with comments and fully type-checked. Test files are
// not included: `go list`'s GoFiles excludes _test.go, which is exactly
// dplint's scope (checks govern shipped code; tests may use math/rand,
// write scratch files, and so on).
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPackage
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly {
			if m.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", m.ImportPath, m.Error.Err)
			}
			targets = append(targets, m)
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: typecheck %s: %w", t.ImportPath, err)
		}
		rel := t.ImportPath
		if t.Module != nil && t.Module.Path != "" {
			rel = strings.TrimPrefix(rel, t.Module.Path)
			rel = strings.TrimPrefix(rel, "/")
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			RelPath:    rel,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// StdExports compiles (if needed) and locates gc export data for the
// named stdlib packages and their dependencies, returning path -> export
// file. The analysistest harness uses it to resolve fixture imports.
func StdExports(pkgs ...string) (map[string]string, error) {
	metas, err := goList(".", pkgs)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	return exports, nil
}

// NewImporter returns a go/types importer that reads gc export data via
// lookup. It is the bridge that lets source-parsed packages resolve
// compiled dependencies.
func NewImporter(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	var metas []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
