package load_test

import (
	"testing"

	"github.com/dpgrid/dpgrid/internal/analysis/load"
)

func TestLoadModulePackage(t *testing.T) {
	pkgs, err := load.Load("../../..", "./internal/geom/")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.RelPath != "internal/geom" {
		t.Errorf("RelPath = %q, want internal/geom", p.RelPath)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Rect") == nil {
		t.Error("type info missing: geom.Rect not found in package scope")
	}
	if len(p.Info.Uses) == 0 {
		t.Error("types.Info.Uses is empty; analyzers need use information")
	}
	if len(p.Files) == 0 {
		t.Error("no parsed files")
	}
}

func TestLoadRootPackageRelPath(t *testing.T) {
	pkgs, err := load.Load("../../..", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].RelPath != "" {
		t.Errorf("module root RelPath = %q, want \"\"", pkgs[0].RelPath)
	}
}

func TestStdExports(t *testing.T) {
	exports, err := load.StdExports("math/rand")
	if err != nil {
		t.Fatal(err)
	}
	if exports["math/rand"] == "" {
		t.Error("no export data for math/rand")
	}
	// -deps pulls the transitive closure.
	if exports["math"] == "" {
		t.Error("no export data for transitive dep math")
	}
}
