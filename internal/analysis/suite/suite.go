// Package suite assembles the dplint analyzer set. There is exactly one
// list so the standalone driver, the go-vet shim, and the repo-clean
// meta-test can never disagree about what is enforced.
package suite

import (
	"github.com/dpgrid/dpgrid/internal/analysis"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/alloccap"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/atomicwrite"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/ctxflow"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/maporder"
	"github.com/dpgrid/dpgrid/internal/analysis/passes/noisedet"
)

// ModulePath is the module the suite's scope rules are written against.
const ModulePath = "github.com/dpgrid/dpgrid"

// Analyzers returns the full dplint suite in diagnostic-code order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		noisedet.Analyzer,    // DPL001
		maporder.Analyzer,    // DPL002
		ctxflow.Analyzer,     // DPL003
		atomicwrite.Analyzer, // DPL004
		alloccap.Analyzer,    // DPL005
	}
}
