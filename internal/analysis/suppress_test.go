package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const suppressSrc = `package p

//lint:file-ignore DPL009 fixture: file-wide
//lint:ignore DPL001 fixture: line above
var a = 1
var b = 2 //lint:ignore DPL002 fixture: trailing
var c = 3
//lint:ignore DPL003
var d = 4
//lint:ignore DPL001,DPL002 fixture: two codes
var e = 5
`

func parseSuppressSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestFilter(t *testing.T) {
	fset, files := parseSuppressSrc(t)
	tf := fset.File(files[0].Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }

	cases := []struct {
		name string
		diag Diagnostic
		kept bool
	}{
		{"comment above", Diagnostic{Pos: at(5), Code: "DPL001"}, false},
		{"wrong code above", Diagnostic{Pos: at(5), Code: "DPL002"}, true},
		{"trailing same line", Diagnostic{Pos: at(6), Code: "DPL002"}, false},
		{"no directive", Diagnostic{Pos: at(7), Code: "DPL001"}, true},
		{"missing reason is inert", Diagnostic{Pos: at(9), Code: "DPL003"}, true},
		{"multi-code first", Diagnostic{Pos: at(11), Code: "DPL001"}, false},
		{"multi-code second", Diagnostic{Pos: at(11), Code: "DPL002"}, false},
		{"file-wide anywhere", Diagnostic{Pos: at(7), Code: "DPL009"}, false},
		{"file-wide late line", Diagnostic{Pos: at(11), Code: "DPL009"}, false},
	}
	for _, tc := range cases {
		got := Filter(fset, files, []Diagnostic{tc.diag})
		if kept := len(got) == 1; kept != tc.kept {
			t.Errorf("%s: kept=%v, want %v", tc.name, kept, tc.kept)
		}
	}
}

func TestFilterKeepsOrder(t *testing.T) {
	fset, files := parseSuppressSrc(t)
	tf := fset.File(files[0].Pos())
	diags := []Diagnostic{
		{Pos: tf.LineStart(7), Code: "DPL001", Message: "first"},
		{Pos: tf.LineStart(5), Code: "DPL001", Message: "suppressed"},
		{Pos: tf.LineStart(7), Code: "DPL004", Message: "second"},
	}
	got := Filter(fset, files, diags)
	if len(got) != 2 || got[0].Message != "first" || got[1].Message != "second" {
		t.Fatalf("got %v", got)
	}
}
