package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, "test chart", []string{"q1", "q2", "q3"}, []Series{
		{Label: "UG", Values: []float64{0.1, 0.3, 0.2}},
		{Label: "AG", Values: []float64{0.05, 0.1, 0.08}},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "q1", "q2", "q3", "UG", "AG", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLinesValidation(t *testing.T) {
	var sb strings.Builder
	if err := Lines(&sb, "t", nil, nil, 8); err == nil {
		t.Error("empty chart accepted")
	}
	if err := Lines(&sb, "t", []string{"a"}, []Series{{Label: "s", Values: []float64{1, 2}}}, 8); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Lines(&sb, "t", []string{"a"}, []Series{{Label: "s", Values: []float64{math.NaN()}}}, 8); err == nil {
		t.Error("NaN accepted")
	}
	if err := Lines(&sb, "t", []string{"a"}, []Series{{Label: "s", Values: []float64{-1}}}, 8); err == nil {
		t.Error("negative accepted")
	}
}

func TestLinesAllZeros(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, "zeros", []string{"x"}, []Series{{Label: "z", Values: []float64{0}}}, 6)
	if err != nil {
		t.Fatalf("all-zero series should render: %v", err)
	}
}

func TestCandlesBasic(t *testing.T) {
	var sb strings.Builder
	err := Candles(&sb, "errors", []Stick{
		{Label: "Khy", P25: 0.01, Median: 0.04, P75: 0.15, P95: 0.5, Mean: 0.12},
		{Label: "A-sugg", P25: 0.001, Median: 0.005, P75: 0.02, P95: 0.12, Mean: 0.02},
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"errors", "Khy", "A-sugg", "[", "]", ">", "M"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCandlesValidation(t *testing.T) {
	var sb strings.Builder
	if err := Candles(&sb, "t", nil, 40); err == nil {
		t.Error("empty candles accepted")
	}
	if err := Candles(&sb, "t", []Stick{{Label: "x", Mean: math.Inf(1)}}, 40); err == nil {
		t.Error("Inf accepted")
	}
}

func TestCenterText(t *testing.T) {
	if got := centerText("ab", 6); got != "  ab" {
		t.Errorf("centerText = %q", got)
	}
	if got := centerText("abcdefgh", 4); got != "abcd" {
		t.Errorf("centerText truncation = %q", got)
	}
}
