// Package plot renders experiment results as ASCII charts, giving
// cmd/dpbench output the same two visual forms the paper's figures use:
// line charts of mean relative error per query-size class, and
// candlestick charts of the pooled error distribution per method.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted line: a label and a y-value per x position.
type Series struct {
	Label  string
	Values []float64
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

// Lines renders a multi-series line chart with log-ish scaling disabled
// (linear y), one column block per x label. Values must be non-negative;
// series of differing lengths are rejected.
func Lines(w io.Writer, title string, xLabels []string, series []Series, height int) error {
	if height < 4 {
		height = 10
	}
	if len(series) == 0 || len(xLabels) == 0 {
		return fmt.Errorf("plot: nothing to draw")
	}
	for _, s := range series {
		if len(s.Values) != len(xLabels) {
			return fmt.Errorf("plot: series %q has %d values for %d x labels", s.Label, len(s.Values), len(xLabels))
		}
	}
	maxV := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("plot: series %q has invalid value %g", s.Label, v)
			}
			maxV = math.Max(maxV, v)
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	const colWidth = 8
	width := len(xLabels) * colWidth
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for xi, v := range s.Values {
			row := height - 1 - int(math.Round(v/maxV*float64(height-1)))
			col := xi*colWidth + colWidth/2
			canvas[row][col] = mark
		}
	}

	fmt.Fprintf(w, "%s  (y: 0 .. %.4g)\n", title, maxV)
	for _, line := range canvas {
		fmt.Fprintf(w, "  |%s\n", string(line))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprint(w, "   ")
	for _, lbl := range xLabels {
		fmt.Fprintf(w, "%-*s", colWidth, centerText(lbl, colWidth))
	}
	fmt.Fprintln(w)
	for si, s := range series {
		fmt.Fprintf(w, "   %c %s", markers[si%len(markers)], s.Label)
		if (si+1)%4 == 0 || si == len(series)-1 {
			fmt.Fprintln(w)
		} else {
			fmt.Fprint(w, "    ")
		}
	}
	return nil
}

// Stick is one candlestick: the five summary values the paper plots.
type Stick struct {
	Label                       string
	P25, Median, P75, P95, Mean float64
}

// Candles renders a horizontal candlestick chart: one row per method,
// with the box spanning p25..p75, a bar at the p95, and the mean marked
// (the paper's "black bar").
func Candles(w io.Writer, title string, sticks []Stick, width int) error {
	if width < 20 {
		width = 60
	}
	if len(sticks) == 0 {
		return fmt.Errorf("plot: nothing to draw")
	}
	maxV := 0.0
	labelW := 0
	for _, s := range sticks {
		for _, v := range []float64{s.P25, s.Median, s.P75, s.P95, s.Mean} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("plot: stick %q has invalid value %g", s.Label, v)
			}
			maxV = math.Max(maxV, v)
		}
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(w, "%s  (x: 0 .. %.4g; [=] box p25..p75, | median, > p95, M mean)\n", title, maxV)
	for _, s := range sticks {
		row := []byte(strings.Repeat(" ", width))
		pos := func(v float64) int {
			p := int(math.Round(v / maxV * float64(width-1)))
			if p < 0 {
				p = 0
			}
			if p >= width {
				p = width - 1
			}
			return p
		}
		for i := pos(s.P25); i <= pos(s.P75); i++ {
			row[i] = '='
		}
		row[pos(s.P25)] = '['
		row[pos(s.P75)] = ']'
		row[pos(s.Median)] = '|'
		row[pos(s.P95)] = '>'
		row[pos(s.Mean)] = 'M'
		fmt.Fprintf(w, "  %-*s %s\n", labelW, s.Label, string(row))
	}
	return nil
}

// centerText centers s within width (best effort).
func centerText(s string, width int) string {
	if len(s) >= width {
		return s[:width]
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}
