// Roadnet queries: the traffic-analytics scenario from the paper's
// introduction — an agency publishes road-intersection locations privately
// and analysts ask how much road infrastructure falls inside candidate
// regions (metro areas, corridors, rural squares).
//
//	go run ./examples/roadnet_queries
//
// The example contrasts Uniform Grid and Adaptive Grid on the same
// workload and privacy budget, showing AG's advantage on a dataset with
// large blank areas (the paper's "road" dataset shape).
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/datasets"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

func main() {
	// Scaled-down stand-in for the TIGER road-intersection data
	// (160k points, two dense states, blank in between).
	data, err := datasets.ByName("road", 0.1, 5)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := pointindex.New(data.Domain, data.Points)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 1.0

	ug, err := dpgrid.BuildUniformGrid(data.Points, data.Domain, eps, dpgrid.UGOptions{}, dpgrid.NewNoiseSource(21))
	if err != nil {
		log.Fatal(err)
	}
	ag, err := dpgrid.BuildAdaptiveGrid(data.Points, data.Domain, eps, dpgrid.AGOptions{}, dpgrid.NewNoiseSource(22))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road dataset stand-in: N=%d, eps=%g\n", data.N(), eps)
	fmt.Printf("UG grid %dx%d; AG first level %dx%d with %d leaves\n\n",
		ug.GridSize(), ug.GridSize(), ag.M1(), ag.M1(), ag.LeafCells())

	queries := []struct {
		name string
		rect dpgrid.Rect
	}{
		{"Seattle metro", dpgrid.NewRect(-123, 47, -121.5, 48.2)},
		{"Puget corridor", dpgrid.NewRect(-123.5, 46, -121, 49.3)},
		{"Albuquerque", dpgrid.NewRect(-107.2, 34.6, -106.2, 35.6)},
		{"NM I-25 strip", dpgrid.NewRect(-107.5, 32, -106, 37)},
		{"blank middle", dpgrid.NewRect(-115, 38, -111, 43)},
		{"whole domain", dpgrid.NewRect(-125, 30, -100, 50)},
	}

	fmt.Printf("%-15s %10s | %10s %8s | %10s %8s\n",
		"region", "true", "UG", "err%", "AG", "err%")
	var ugSum, agSum float64
	for _, q := range queries {
		truth := float64(idx.Count(q.rect))
		u := ug.Query(q.rect)
		a := ag.Query(q.rect)
		ue := relErr(u, truth, float64(data.N()))
		ae := relErr(a, truth, float64(data.N()))
		ugSum += ue
		agSum += ae
		fmt.Printf("%-15s %10.0f | %10.1f %7.1f%% | %10.1f %7.1f%%\n",
			q.name, truth, u, ue*100, a, ae*100)
	}
	fmt.Printf("\nmean relative error: UG %.2f%%, AG %.2f%%\n",
		ugSum/float64(len(queries))*100, agSum/float64(len(queries))*100)
}

// relErr is the paper's relative error with the rho = 0.001*N floor.
func relErr(est, truth, n float64) float64 {
	return math.Abs(est-truth) / math.Max(truth, 0.001*n)
}
