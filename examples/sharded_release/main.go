// Sharded release: scaling the paper's grids past one monolithic
// synopsis with parallel composition.
//
//	go run ./examples/sharded_release
//
// Spatially disjoint tiles see disjoint data, so a KxL mosaic of
// per-tile synopses can spend the *full* epsilon in every tile and the
// whole release is still eps-differentially private. This example
// builds a 4x4 sharded AG release next to a monolithic AG at the same
// total level-1 cell count, compares their accuracy on the same query
// workload, and round-trips the mosaic through the manifest format a
// serving fleet would ship.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/datasets"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

func main() {
	data, err := datasets.ByName("checkin", 0.1, 13)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 1.0

	// Monolithic AG vs a 4x4 mosaic at matched total level-1 cells
	// (48x48 = 16 tiles of 12x12).
	mono, err := dpgrid.BuildAdaptiveGrid(data.Points, data.Domain, eps,
		dpgrid.AGOptions{M1: 48}, dpgrid.NewNoiseSource(99))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := dpgrid.NewShardPlan(data.Domain, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := dpgrid.BuildShardedAdaptiveGrid(data.Points, plan, eps,
		dpgrid.AGOptions{M1: 12}, dpgrid.ShardOptions{}, dpgrid.NewNoiseSource(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built monolithic AG (m1=48) and %d-shard mosaic (4x4, m1=12 each) under eps=%g\n",
		sharded.NumShards(), eps)

	// Same random query workload against both; every tile spent the
	// full eps, so the mosaic gives up nothing per tile.
	idx, err := pointindex.New(data.Domain, data.Points)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var monoErr, shardErr float64
	const queries = 200
	rects := make([]dpgrid.Rect, queries)
	for i := range rects {
		w := data.Domain.Width() * (0.02 + 0.3*rng.Float64())
		h := data.Domain.Height() * (0.02 + 0.3*rng.Float64())
		x0 := data.Domain.MinX + rng.Float64()*(data.Domain.Width()-w)
		y0 := data.Domain.MinY + rng.Float64()*(data.Domain.Height()-h)
		rects[i] = dpgrid.NewRect(x0, y0, x0+w, y0+h)
	}
	monoAns := mono.QueryBatch(rects)
	shardAns := sharded.QueryBatch(rects) // routed to overlapping shards only
	for i, r := range rects {
		truth := float64(idx.Count(r))
		monoErr += math.Abs(monoAns[i] - truth)
		shardErr += math.Abs(shardAns[i] - truth)
	}
	fmt.Printf("mean |error| over %d queries: monolithic %.1f, sharded %.1f\n",
		queries, monoErr/queries, shardErr/queries)

	// Ship the mosaic the way dpserve consumes it: one manifest file.
	var buf bytes.Buffer
	if err := dpgrid.WriteSynopsis(&buf, sharded); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	loaded, err := dpgrid.ReadSynopsis(&buf)
	if err != nil {
		log.Fatal(err)
	}
	r := rects[0]
	fmt.Printf("manifest round trip: %d bytes, Query(%v) %.1f -> %.1f\n",
		size, r, sharded.Query(r), loaded.Query(r))
}
