// Synthetic release: the second use of a synopsis from the paper's
// framework (section II-B) — "This synopsis can then be used either for
// generating a synthetic dataset, or for answering queries directly."
//
//	go run ./examples/synthetic_release
//
// A data holder publishes an AG synopsis once, then anyone (including
// the holder) can sample an arbitrarily large synthetic dataset from it
// with no further privacy cost, and hand that dataset to tools that
// expect raw points rather than a query interface.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/datasets"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

func main() {
	// Private input: the landmark stand-in (90k points of POI data).
	data, err := datasets.ByName("landmark", 0.1, 13)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 1.0

	syn, err := dpgrid.BuildAdaptiveGrid(data.Points, data.Domain, eps,
		dpgrid.AGOptions{}, dpgrid.NewNoiseSource(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published AG synopsis of %d points under eps=%g\n", data.N(), eps)

	// Sample a synthetic dataset the same size as the original estimate.
	synth, err := syn.Synthesize(0, dpgrid.NewNoiseSource(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d synthetic points (pure post-processing)\n\n", len(synth))

	// How faithful is the synthetic dataset? Compare range counts that
	// downstream analysts might run, computed on real vs synthetic data.
	realIdx, err := pointindex.New(data.Domain, data.Points)
	if err != nil {
		log.Fatal(err)
	}
	synthIdx, err := pointindex.New(data.Domain, synth)
	if err != nil {
		log.Fatal(err)
	}
	scale := float64(realIdx.Len()) / float64(synthIdx.Len())

	regions := []struct {
		name string
		rect dpgrid.Rect
	}{
		{"northeast megalopolis", dpgrid.NewRect(-80, 38, -72, 44)},
		{"california coast", dpgrid.NewRect(-124, 32, -117, 40)},
		{"gulf coast", dpgrid.NewRect(-98, 26, -88, 32)},
		{"northern plains", dpgrid.NewRect(-108, 44, -96, 49)},
		{"offshore (empty)", dpgrid.NewRect(-126, 20, -120, 24)},
	}
	fmt.Printf("%-24s %10s %12s %9s\n", "analyst query", "real", "synthetic", "rel.err")
	for _, rg := range regions {
		truth := float64(realIdx.Count(rg.rect))
		est := float64(synthIdx.Count(rg.rect)) * scale
		re := math.Abs(est-truth) / math.Max(truth, 0.001*float64(realIdx.Len()))
		fmt.Printf("%-24s %10.0f %12.1f %8.2f%%\n", rg.name, truth, est, re*100)
	}
	fmt.Println("\n(synthetic counts are scaled to the real dataset size; every number")
	fmt.Println(" derives from the released synopsis only, never from the raw data)")
}
