// Quickstart: build a differentially private synopsis of a point dataset
// and answer range-count queries with it.
//
//	go run ./examples/quickstart
//
// This example is fully self-contained: it fabricates a small clustered
// dataset, publishes an Adaptive Grid synopsis under eps = 1, and compares
// a few private answers against the truth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/dpgrid/dpgrid"
)

func main() {
	// A city's worth of points: two dense districts plus background noise.
	rng := rand.New(rand.NewSource(7))
	dom, err := dpgrid.NewDomain(0, 0, 100, 100)
	if err != nil {
		log.Fatal(err)
	}
	var points []dpgrid.Point
	for len(points) < 200_000 {
		var p dpgrid.Point
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // downtown
			p = dpgrid.Point{X: 30 + rng.NormFloat64()*5, Y: 40 + rng.NormFloat64()*5}
		case 6, 7, 8: // uptown
			p = dpgrid.Point{X: 70 + rng.NormFloat64()*8, Y: 75 + rng.NormFloat64()*6}
		default: // suburbs
			p = dpgrid.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		if dom.Contains(p) {
			points = append(points, p)
		}
	}

	// Publish an Adaptive Grid synopsis under eps = 1. The zero-valued
	// AGOptions apply the paper's guidelines (alpha = 0.5, c = 10,
	// c2 = 5, first-level size from the m1 rule).
	const eps = 1.0
	syn, err := dpgrid.BuildAdaptiveGrid(points, dom, eps, dpgrid.AGOptions{}, dpgrid.NewNoiseSource(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published AG synopsis: first level %dx%d, %d leaf cells, eps=%g\n",
		syn.M1(), syn.M1(), syn.LeafCells(), eps)

	// Every query below is post-processing: no further privacy cost.
	queries := []struct {
		name string
		rect dpgrid.Rect
	}{
		{"downtown core", dpgrid.NewRect(25, 35, 35, 45)},
		{"uptown", dpgrid.NewRect(60, 65, 80, 85)},
		{"empty corner", dpgrid.NewRect(0, 90, 10, 100)},
		{"whole city", dpgrid.NewRect(0, 0, 100, 100)},
	}
	fmt.Printf("%-15s %12s %12s %9s\n", "query", "true", "private", "rel.err")
	for _, q := range queries {
		truth := countIn(points, q.rect)
		private := syn.Query(q.rect)
		rel := 0.0
		if truth > 0 {
			rel = abs(private-float64(truth)) / float64(truth)
		}
		fmt.Printf("%-15s %12d %12.1f %8.2f%%\n", q.name, truth, private, rel*100)
	}
}

func countIn(points []dpgrid.Point, r dpgrid.Rect) int {
	n := 0
	for _, p := range points {
		if r.Contains(p) {
			n++
		}
	}
	return n
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
