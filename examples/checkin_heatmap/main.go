// Checkin heatmap: publish a location-based-service check-in dataset as a
// differentially private synopsis and render the density it exposes next
// to the real density — the "share geospatial data for research" use case
// from the paper's introduction.
//
//	go run ./examples/checkin_heatmap
//
// The private heatmap preserves the world-map structure (continents,
// cities) while every individual check-in is protected by eps-DP.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/datasets"
)

const (
	cols = 72
	rows = 18
	eps  = 0.5
)

func main() {
	// A scaled-down stand-in for the Gowalla check-in dataset (100k
	// points; see internal/datasets for what it preserves).
	data, err := datasets.ByName("checkin", 0.1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, N=%d, domain [%g,%g]x[%g,%g]\n",
		data.Name, data.N(), data.Domain.MinX, data.Domain.MaxX, data.Domain.MinY, data.Domain.MaxY)

	syn, err := dpgrid.BuildAdaptiveGrid(data.Points, data.Domain, eps, dpgrid.AGOptions{}, dpgrid.NewNoiseSource(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AG synopsis: m1=%d, %d leaf cells, eps=%g\n\n", syn.M1(), syn.LeafCells(), eps)

	truth := rasterTrue(data)
	private := rasterPrivate(syn, data.Domain)

	fmt.Println("TRUE density:")
	render(truth)
	fmt.Println("\nPRIVATE density (from the released synopsis only):")
	render(private)

	// How similar are the two rasters?
	fmt.Printf("\nraster correlation: %.3f (1.0 = identical shape)\n", correlation(truth, private))
}

func rasterTrue(d *datasets.Dataset) [][]float64 {
	g := newRaster()
	cw := d.Domain.Width() / cols
	ch := d.Domain.Height() / rows
	for _, p := range d.Points {
		cx := int((p.X - d.Domain.MinX) / cw)
		cy := int((p.Y - d.Domain.MinY) / ch)
		cx = clamp(cx, 0, cols-1)
		cy = clamp(cy, 0, rows-1)
		g[cy][cx]++
	}
	return g
}

func rasterPrivate(syn dpgrid.Synopsis, dom dpgrid.Domain) [][]float64 {
	g := newRaster()
	cw := dom.Width() / cols
	ch := dom.Height() / rows
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			r := dpgrid.NewRect(
				dom.MinX+float64(cx)*cw, dom.MinY+float64(cy)*ch,
				dom.MinX+float64(cx+1)*cw, dom.MinY+float64(cy+1)*ch)
			g[cy][cx] = math.Max(0, syn.Query(r))
		}
	}
	return g
}

func newRaster() [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

func render(g [][]float64) {
	shades := []byte(" .:-=+*#%@")
	var maxV float64
	for _, row := range g {
		for _, v := range row {
			maxV = math.Max(maxV, v)
		}
	}
	// Top row is the highest latitude.
	for cy := rows - 1; cy >= 0; cy-- {
		line := make([]byte, cols)
		for cx := 0; cx < cols; cx++ {
			v := g[cy][cx]
			idx := 0
			if maxV > 0 && v > 0 {
				// Log scale so small cities remain visible.
				idx = int(math.Log1p(v) / math.Log1p(maxV) * float64(len(shades)-1))
				idx = clamp(idx, 1, len(shades)-1)
			}
			line[cx] = shades[idx]
		}
		fmt.Println(string(line))
	}
}

func correlation(a, b [][]float64) float64 {
	var sa, sb, saa, sbb, sab float64
	n := float64(rows * cols)
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			x, y := a[cy][cx], b[cy][cx]
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
