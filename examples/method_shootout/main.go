// Method shootout: a miniature version of the paper's final comparison
// (Figure 5) run through the public API — every selectable method
// (KD-hybrid, UG, Privlet, Hierarchy, AG) measured on one dataset and
// one epsilon with CompareMethods, then checked against SelectMethod's
// static pick. This is the offline twin of `dpgrid -method auto`: the
// CLI applies SelectMethod's guideline rule online; this example
// measures whether that rule would have won on this data.
//
//	go run ./examples/method_shootout
//
// Expected shape (the paper's headline result): AG < UG ~ KD-hybrid,
// with Privlet and Hierarchy trailing — and SelectMethod's pick at or
// near the top of the measured ranking.
package main

import (
	"fmt"
	"log"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/datasets"
)

const (
	eps          = 1.0
	queriesPerSz = 100
)

func main() {
	data, err := datasets.ByName("landmark", 0.1, 9) // 90k points
	if err != nil {
		log.Fatal(err)
	}

	// One workload across the paper's six query size classes, shared by
	// every method so the ranking is apples-to-apples.
	var queries []dpgrid.Rect
	for s := 1; s <= 6; s++ {
		w, h := data.QuerySize(s)
		qs, err := dpgrid.RandomQueries(data.Domain, w, h, queriesPerSz, int64(77+s))
		if err != nil {
			log.Fatal(err)
		}
		queries = append(queries, qs...)
	}

	methods := []dpgrid.MethodName{
		dpgrid.MethodKDTree,
		dpgrid.MethodUG,
		dpgrid.MethodPrivlet,
		dpgrid.MethodHierarchy,
		dpgrid.MethodAG,
	}

	// CompareMethods builds each synopsis under the paper's suggested
	// parameters and measures it against ground truth. Each build spends
	// eps independently: this is the data holder's pre-release tuning
	// loop — release only the winner.
	results, err := dpgrid.CompareMethods(data.Points, data.Domain, eps,
		methods, queries, dpgrid.NewNoiseSource(31))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("landmark stand-in: N=%d, eps=%g, %d queries (%d per size class)\n\n",
		data.N(), eps, len(queries), queriesPerSz)
	fmt.Printf("%-12s %10s %10s %10s\n", "method", "mean rel", "median", "p95")
	for _, r := range results {
		fmt.Printf("%-12s %10.4f %10.4f %10.4f\n",
			r.Method, r.Stats.MeanRelativeError, r.Stats.RelMedian, r.Stats.RelP95)
	}

	// The static rule `dpgrid -method auto` applies online, without
	// touching the data beyond N.
	shape := dpgrid.WorkloadShapeOf(data.Domain, queries)
	choice := dpgrid.SelectMethod(data.N(), eps, shape)
	fmt.Printf("\nSelectMethod picks %q: %s\n", choice.Method, choice.Reason)
	if results[0].Method == choice.Method {
		fmt.Println("-> the static pick also won the measured shootout")
	} else {
		fmt.Printf("-> measured winner was %q; the static rule optimizes the paper's\n"+
			"   average case, CompareMethods measures your data\n", results[0].Method)
	}
	fmt.Println("\n(lower is better; the ag row should win, reproducing Figure 5's shape)")
}
