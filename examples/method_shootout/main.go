// Method shootout: a miniature version of the paper's final comparison
// (Figure 5) run through the public API — KD-hybrid vs UG vs Privlet vs
// AG on one dataset, one epsilon, with mean relative error per query
// size class.
//
//	go run ./examples/method_shootout
//
// Expected shape (the paper's headline result): AG < UG ~ KD-hybrid, with
// Privlet competitive only at large grid sizes.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/datasets"
	"github.com/dpgrid/dpgrid/internal/pointindex"
)

const (
	eps          = 1.0
	queriesPerSz = 100
)

func main() {
	data, err := datasets.ByName("landmark", 0.1, 9) // 90k points
	if err != nil {
		log.Fatal(err)
	}
	idx, err := pointindex.New(data.Domain, data.Points)
	if err != nil {
		log.Fatal(err)
	}
	rho := 0.001 * float64(data.N())

	suggested := dpgrid.SuggestedGridSize(data.N(), eps)
	methods := []struct {
		name string
		syn  dpgrid.Synopsis
	}{
		{"KD-hybrid", must(dpgrid.BuildKDTree(data.Points, data.Domain, eps,
			dpgrid.KDTreeOptions{Method: dpgrid.KDHybrid}, dpgrid.NewNoiseSource(31)))},
		{"UG (Guideline 1)", must(dpgrid.BuildUniformGrid(data.Points, data.Domain, eps,
			dpgrid.UGOptions{}, dpgrid.NewNoiseSource(32)))},
		{"Privlet", must(dpgrid.BuildPrivlet(data.Points, data.Domain, eps,
			dpgrid.PrivletOptions{GridSize: suggested}, dpgrid.NewNoiseSource(33)))},
		{"AG (Guideline 2)", must(dpgrid.BuildAdaptiveGrid(data.Points, data.Domain, eps,
			dpgrid.AGOptions{}, dpgrid.NewNoiseSource(34)))},
	}

	fmt.Printf("landmark stand-in: N=%d, eps=%g, %d queries per size\n\n", data.N(), eps, queriesPerSz)
	fmt.Printf("%-18s", "method")
	for s := 1; s <= 6; s++ {
		fmt.Printf(" %8s", fmt.Sprintf("q%d", s))
	}
	fmt.Printf(" %9s\n", "overall")

	rng := rand.New(rand.NewSource(77))
	// Same workloads for every method.
	workloads := make([][]dpgrid.Rect, 6)
	truths := make([][]float64, 6)
	for s := 1; s <= 6; s++ {
		w, h := data.QuerySize(s)
		qs := make([]dpgrid.Rect, queriesPerSz)
		ts := make([]float64, queriesPerSz)
		for i := range qs {
			x0 := data.Domain.MinX + rng.Float64()*(data.Domain.Width()-w)
			y0 := data.Domain.MinY + rng.Float64()*(data.Domain.Height()-h)
			qs[i] = dpgrid.NewRect(x0, y0, x0+w, y0+h)
			ts[i] = float64(idx.Count(qs[i]))
		}
		workloads[s-1] = qs
		truths[s-1] = ts
	}

	for _, m := range methods {
		fmt.Printf("%-18s", m.name)
		var overall float64
		for s := 0; s < 6; s++ {
			var sum float64
			for i, q := range workloads[s] {
				est := m.syn.Query(q)
				sum += math.Abs(est-truths[s][i]) / math.Max(truths[s][i], rho)
			}
			mean := sum / float64(len(workloads[s]))
			overall += mean
			fmt.Printf(" %8.4f", mean)
		}
		fmt.Printf(" %9.4f\n", overall/6)
	}
	fmt.Println("\n(lower is better; the AG row should win, reproducing Figure 5's shape)")
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
