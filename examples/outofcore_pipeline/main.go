// Out-of-core pipeline: the full data-holder workflow for datasets that
// do not fit in memory, combining the library's streaming construction
// (the paper's "single scan / two passes" efficiency claim, section
// IV-C) with synopsis serialization.
//
//	go run ./examples/outofcore_pipeline
//
// Steps:
//  1. A large CSV of points exists on disk (simulated here).
//  2. The data holder streams it — never loading it into memory — into
//     an AG synopsis under eps-DP (one fused scan when the dataset fits
//     AGOptions.IndexLimit, two to three bounded-memory scans past it).
//  3. The synopsis is saved to a small JSON file. The raw data can now
//     be deleted or locked away; the privacy budget is spent.
//  4. An analyst later loads the synopsis and answers arbitrary range
//     queries with no access to the raw data and no further privacy cost.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"github.com/dpgrid/dpgrid"
	"github.com/dpgrid/dpgrid/internal/atomicfile"
	"github.com/dpgrid/dpgrid/internal/datasets"
)

func main() {
	workDir, err := os.MkdirTemp("", "dpgrid-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	// Step 1: a "large" CSV on disk (200k points standing in for data
	// that would not fit in RAM).
	csvPath := filepath.Join(workDir, "checkins.csv")
	data, err := datasets.ByName("checkin", 0.2, 17)
	if err != nil {
		log.Fatal(err)
	}
	err = atomicfile.Write(csvPath, func(w io.Writer) error {
		return datasets.WriteCSV(w, data.Points)
	})
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(csvPath)
	fmt.Printf("step 1: %d points on disk (%s, %.1f MB)\n", data.N(), csvPath, float64(info.Size())/1e6)

	// Step 2: stream-build the synopsis. CSVFilePoints re-reads the file
	// per pass; memory use is bounded by the synopsis, not the data.
	dom := data.Domain
	const eps = 1.0
	syn, err := dpgrid.BuildAdaptiveGridSeq(
		dpgrid.CSVFilePoints(csvPath), dom, eps,
		dpgrid.AGOptions{}, dpgrid.NewNoiseSource(21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: built AG synopsis over the stream (m1=%d, %d leaf cells, eps=%g)\n",
		syn.M1(), syn.LeafCells(), eps)

	// Step 3: persist the release.
	synPath := filepath.Join(workDir, "synopsis.json")
	err = atomicfile.Write(synPath, func(w io.Writer) error {
		return dpgrid.WriteSynopsis(w, syn)
	})
	if err != nil {
		log.Fatal(err)
	}
	sInfo, _ := os.Stat(synPath)
	fmt.Printf("step 3: saved synopsis (%.2f MB — %.0fx smaller than the data)\n",
		float64(sInfo.Size())/1e6, float64(info.Size())/float64(sInfo.Size()))

	// Step 4: the analyst's side — no raw data in sight.
	lf, err := os.Open(synPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := dpgrid.ReadSynopsis(lf)
	lf.Close()
	if err != nil {
		log.Fatal(err)
	}
	queries := []struct {
		name string
		rect dpgrid.Rect
	}{
		{"western Europe", dpgrid.NewRect(-10, 36, 20, 60)},
		{"US east coast", dpgrid.NewRect(-85, 25, -65, 45)},
		{"south Pacific", dpgrid.NewRect(-160, -50, -120, -10)},
	}
	fmt.Println("step 4: analyst queries the loaded synopsis:")
	for _, q := range queries {
		fmt.Printf("  %-16s %12.1f check-ins\n", q.name, loaded.Query(q.rect))
	}
}
