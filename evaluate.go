package dpgrid

import (
	"fmt"
	"math/rand"

	"github.com/dpgrid/dpgrid/internal/pointindex"
	"github.com/dpgrid/dpgrid/internal/query"
)

// ErrorStats summarizes a synopsis's error distribution over a workload,
// using the paper's metrics: relative error |est - true| / max(true,
// 0.001*N) and absolute error |est - true|, each with the five-number
// candlestick summary the paper plots (p25, median, p75, p95, mean).
type ErrorStats struct {
	Queries           int
	MeanRelativeError float64
	MeanAbsoluteError float64
	RelP25, RelMedian float64
	RelP75, RelP95    float64
	AbsP25, AbsMedian float64
	AbsP75, AbsP95    float64
}

// Evaluate measures a synopsis against ground truth: it answers every
// query both exactly (from points) and privately (from syn) and returns
// the error statistics. Use it to compare methods or parameter choices on
// your own data before releasing.
//
// Evaluation touches the raw data, so it is for the data holder's
// pre-release tuning only — its outputs are not differentially private.
func Evaluate(syn Synopsis, points []Point, dom Domain, queries []Rect) (ErrorStats, error) {
	if syn == nil {
		return ErrorStats{}, fmt.Errorf("dpgrid: nil synopsis")
	}
	if len(queries) == 0 {
		return ErrorStats{}, fmt.Errorf("dpgrid: no queries")
	}
	idx, err := pointindex.New(dom, points)
	if err != nil {
		return ErrorStats{}, fmt.Errorf("dpgrid: %w", err)
	}
	rho := query.Rho(idx.Len())
	rel := make([]float64, len(queries))
	abs := make([]float64, len(queries))
	for i, q := range queries {
		truth := float64(idx.Count(q))
		est := syn.Query(q)
		rel[i] = query.RelativeError(est, truth, rho)
		abs[i] = query.AbsoluteError(est, truth)
	}
	rc := query.Summarize(rel)
	ac := query.Summarize(abs)
	return ErrorStats{
		Queries:           len(queries),
		MeanRelativeError: rc.Mean,
		MeanAbsoluteError: ac.Mean,
		RelP25:            rc.P25,
		RelMedian:         rc.Median,
		RelP75:            rc.P75,
		RelP95:            rc.P95,
		AbsP25:            ac.P25,
		AbsMedian:         ac.Median,
		AbsP75:            ac.P75,
		AbsP95:            ac.P95,
	}, nil
}

// RandomQueries generates count random axis-aligned query rectangles of
// extent w x h placed uniformly inside dom — the paper's workload shape.
// Use a fixed seed for reproducible evaluations.
func RandomQueries(dom Domain, w, h float64, count int, seed int64) ([]Rect, error) {
	rng := rand.New(rand.NewSource(seed))
	return query.Generate(rng, dom, w, h, count)
}
