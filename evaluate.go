package dpgrid

import (
	"fmt"
	"sort"

	"github.com/dpgrid/dpgrid/internal/core"
	"github.com/dpgrid/dpgrid/internal/noise"
	"github.com/dpgrid/dpgrid/internal/pointindex"
	"github.com/dpgrid/dpgrid/internal/query"
)

// ErrorStats summarizes a synopsis's error distribution over a workload,
// using the paper's metrics: relative error |est - true| / max(true,
// 0.001*N) and absolute error |est - true|, each with the five-number
// candlestick summary the paper plots (p25, median, p75, p95, mean).
type ErrorStats struct {
	Queries           int
	MeanRelativeError float64
	MeanAbsoluteError float64
	RelP25, RelMedian float64
	RelP75, RelP95    float64
	AbsP25, AbsMedian float64
	AbsP75, AbsP95    float64
}

// Evaluate measures a synopsis against ground truth: it answers every
// query both exactly (from points) and privately (from syn) and returns
// the error statistics. Use it to compare methods or parameter choices on
// your own data before releasing.
//
// Evaluation touches the raw data, so it is for the data holder's
// pre-release tuning only — its outputs are not differentially private.
func Evaluate(syn Synopsis, points []Point, dom Domain, queries []Rect) (ErrorStats, error) {
	if syn == nil {
		return ErrorStats{}, fmt.Errorf("dpgrid: nil synopsis")
	}
	if len(queries) == 0 {
		return ErrorStats{}, fmt.Errorf("dpgrid: no queries")
	}
	idx, err := pointindex.New(dom, points)
	if err != nil {
		return ErrorStats{}, fmt.Errorf("dpgrid: %w", err)
	}
	rho := query.Rho(idx.Len())
	rel := make([]float64, len(queries))
	abs := make([]float64, len(queries))
	for i, q := range queries {
		truth := float64(idx.Count(q))
		est := syn.Query(q)
		rel[i] = query.RelativeError(est, truth, rho)
		abs[i] = query.AbsoluteError(est, truth)
	}
	rc := query.Summarize(rel)
	ac := query.Summarize(abs)
	return ErrorStats{
		Queries:           len(queries),
		MeanRelativeError: rc.Mean,
		MeanAbsoluteError: ac.Mean,
		RelP25:            rc.P25,
		RelMedian:         rc.Median,
		RelP75:            rc.P75,
		RelP95:            rc.P95,
		AbsP25:            ac.P25,
		AbsMedian:         ac.Median,
		AbsP75:            ac.P75,
		AbsP95:            ac.P95,
	}, nil
}

// RandomQueries generates count random axis-aligned query rectangles of
// extent w x h placed uniformly inside dom — the paper's workload shape.
// Use a fixed seed for reproducible evaluations.
func RandomQueries(dom Domain, w, h float64, count int, seed int64) ([]Rect, error) {
	return query.Generate(noise.NewSource(seed), dom, w, h, count)
}

// Method selection and comparison: the programmatic face of the CLI's
// -method auto flag and the method-shootout example. SelectMethod
// applies the paper's static guidance; CompareMethods measures every
// requested method on the caller's own data for empirical selection.

// MethodName identifies a synopsis construction method ("ug", "ag",
// "hierarchy", "kdtree", "privlet").
type MethodName = core.MethodName

// The selectable construction methods.
const (
	MethodUG        = core.MethodUG
	MethodAG        = core.MethodAG
	MethodHierarchy = core.MethodHierarchy
	MethodKDTree    = core.MethodKDTree
	MethodPrivlet   = core.MethodPrivlet
)

// WorkloadShape summarizes a query workload for method selection; build
// one from a concrete workload with WorkloadShapeOf.
type WorkloadShape = core.WorkloadShape

// MethodChoice is SelectMethod's result: the chosen method, suggested
// grid parameters, and the auditable reason.
type MethodChoice = core.MethodChoice

// WorkloadShapeOf summarizes a concrete query workload over dom.
func WorkloadShapeOf(dom Domain, queries []Rect) WorkloadShape {
	return core.ShapeOf(dom, queries)
}

// SelectMethod picks a construction method for n points under eps from
// the paper's guidelines (sections IV-V) plus the workload shape: UG
// when N*eps is too small for adaptivity or the workload is dominated
// by large queries, AG otherwise. Pass the zero WorkloadShape when the
// workload is unknown.
func SelectMethod(n int, eps float64, shape WorkloadShape) MethodChoice {
	return core.SelectMethod(n, eps, shape)
}

// BuildMethod constructs a synopsis of points with the named method
// under the paper's suggested parameters for the dataset scale — the
// builder behind -method auto, usable directly when the caller has a
// MethodChoice (or wants a specific method) without hand-picking
// options.
func BuildMethod(m MethodName, points []Point, dom Domain, eps float64, src NoiseSource) (Synopsis, error) {
	n := len(points)
	switch m {
	case MethodUG:
		return BuildUniformGrid(points, dom, eps, UGOptions{}, src)
	case MethodAG:
		return BuildAdaptiveGrid(points, dom, eps, AGOptions{}, src)
	case MethodHierarchy:
		// H_{2,3} at the guideline scale: the leaf grid must divide
		// evenly through both coarser levels, so round the guideline
		// size up to a multiple of branching^(depth-1) = 4.
		size := SuggestedGridSize(n, eps)
		if size < 4 {
			size = 4
		} else if r := size % 4; r != 0 {
			size += 4 - r
		}
		return BuildHierarchy(points, dom, eps, HierarchyOptions{GridSize: size, Branching: 2, Depth: 3}, src)
	case MethodKDTree:
		return BuildKDTree(points, dom, eps, KDTreeOptions{Method: KDHybrid}, src)
	case MethodPrivlet:
		return BuildPrivlet(points, dom, eps, PrivletOptions{GridSize: SuggestedGridSize(n, eps)}, src)
	default:
		return nil, fmt.Errorf("dpgrid: unknown method %q", m)
	}
}

// MethodMeasurement is one method's measured accuracy from
// CompareMethods, with the synopsis it measured so the caller can
// release the winner without rebuilding.
type MethodMeasurement struct {
	Method   MethodName
	Stats    ErrorStats
	Synopsis Synopsis
}

// CompareMethods builds every requested method over the same data and
// measures each against ground truth on the same workload, returning
// the measurements sorted by mean relative error (best first). Like
// Evaluate, it touches the raw data: it is the data holder's
// pre-release tuning tool, and its outputs are not differentially
// private. Each build consumes eps independently — release only the
// winner (sequential composition charges every released synopsis).
func CompareMethods(points []Point, dom Domain, eps float64, methods []MethodName, queries []Rect, src NoiseSource) ([]MethodMeasurement, error) {
	if len(methods) == 0 {
		return nil, fmt.Errorf("dpgrid: no methods to compare")
	}
	out := make([]MethodMeasurement, 0, len(methods))
	for _, m := range methods {
		syn, err := BuildMethod(m, points, dom, eps, src)
		if err != nil {
			return nil, fmt.Errorf("dpgrid: build %s: %w", m, err)
		}
		stats, err := Evaluate(syn, points, dom, queries)
		if err != nil {
			return nil, fmt.Errorf("dpgrid: evaluate %s: %w", m, err)
		}
		out = append(out, MethodMeasurement{Method: m, Stats: stats, Synopsis: syn})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Stats.MeanRelativeError < out[j].Stats.MeanRelativeError
	})
	return out, nil
}
