module github.com/dpgrid/dpgrid

go 1.21
